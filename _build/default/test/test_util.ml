module Const = Scnoise_util.Const
module Db = Scnoise_util.Db
module Grid = Scnoise_util.Grid
module Table = Scnoise_util.Table

let check_close ?(eps = 1e-12) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* --- Const --- *)

let test_thermal_psd () =
  let r = 1000.0 in
  let psd = Const.thermal_current_psd r in
  check_close "2kT/R at 300K" (2.0 *. 1.380649e-23 *. 300.0 /. r) psd;
  let psd_350 = Const.thermal_current_psd ~temperature:350.0 r in
  check_close "scales with T" (psd *. 350.0 /. 300.0) psd_350

let test_thermal_psd_invalid () =
  Alcotest.check_raises "r = 0" (Invalid_argument "Const.thermal_current_psd: r <= 0")
    (fun () -> ignore (Const.thermal_current_psd 0.0))

let test_thermal_voltage () =
  let vt = Const.thermal_voltage () in
  if vt < 0.0258 || vt > 0.0259 then
    Alcotest.failf "kT/q at 300K should be ~25.85mV, got %g" vt

(* --- Db --- *)

let test_db_roundtrip () =
  List.iter
    (fun p -> check_close "of_power/to_power" p (Db.to_power (Db.of_power p)))
    [ 1e-12; 1.0; 42.0; 1e9 ]

let test_db_known () =
  check_close "10x power = 10dB" 10.0 (Db.of_power 10.0);
  check_close "amplitude 10 = 20dB" 20.0 (Db.of_amplitude 10.0);
  check_close "delta" 3.0103 ~eps:1e-4 (Db.delta 2.0 1.0)

let test_db_nonpositive () =
  if Db.of_power 0.0 <> neg_infinity then Alcotest.fail "0 power";
  if Db.of_power (-1.0) <> neg_infinity then Alcotest.fail "neg power";
  if Db.of_amplitude 0.0 <> neg_infinity then Alcotest.fail "0 amp"

(* --- Grid --- *)

let test_linspace () =
  let g = Grid.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Array.length g);
  check_close "first" 0.0 g.(0);
  check_close "last" 1.0 g.(4);
  check_close "step" 0.25 g.(1)

let test_linspace_single () =
  let g = Grid.linspace 3.0 9.0 1 in
  Alcotest.(check int) "length" 1 (Array.length g);
  check_close "value" 3.0 g.(0)

let test_logspace () =
  let g = Grid.logspace 1.0 1000.0 4 in
  check_close "g0" 1.0 g.(0);
  check_close "g1" 10.0 g.(1);
  check_close "g3" 1000.0 g.(3)

let test_logspace_invalid () =
  Alcotest.check_raises "bounds" (Invalid_argument "Grid.logspace: bounds must be > 0")
    (fun () -> ignore (Grid.logspace 0.0 1.0 3))

let test_arange () =
  let g = Grid.arange 0.0 1.0 0.25 in
  Alcotest.(check int) "length" 4 (Array.length g);
  check_close "g3" 0.75 g.(3)

let test_trapezoid_exact_linear () =
  (* trapezoid is exact on affine functions *)
  let xs = Grid.linspace 0.0 2.0 7 in
  let ys = Array.map (fun x -> (3.0 *. x) +. 1.0) xs in
  check_close "∫(3x+1) over [0,2]" 8.0 (Grid.trapezoid xs ys)

let test_trapezoid_uniform_matches () =
  let xs = Grid.linspace 0.0 1.0 101 in
  let ys = Array.map (fun x -> x *. x) xs in
  let a = Grid.trapezoid xs ys in
  let b = Grid.trapezoid_uniform 0.01 ys in
  check_close ~eps:1e-10 "uniform = general" a b

let test_simpson_exact_cubic () =
  (* Simpson is exact on cubics (odd sample count). *)
  let n = 11 in
  let h = 1.0 /. float_of_int (n - 1) in
  let ys =
    Array.init n (fun i ->
        let x = h *. float_of_int i in
        x *. x *. x)
  in
  check_close ~eps:1e-12 "∫x³ over [0,1]" 0.25 (Grid.simpson_uniform h ys)

let test_simpson_even_count () =
  let n = 10 in
  let h = 1.0 /. float_of_int (n - 1) in
  let ys = Array.init n (fun i -> h *. float_of_int i) in
  check_close ~eps:1e-12 "∫x over [0,1] (even count)" 0.5
    (Grid.simpson_uniform h ys)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  (match lines with
  | header :: _ ->
      if not (String.length header >= String.length "name   value") then
        Alcotest.fail "header not padded"
  | [] -> Alcotest.fail "empty render")

let test_table_pad_short_row () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  ignore (Table.render t)

let test_table_reject_long_row () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_csv () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "x,y"; "plain" ];
  Table.add_row t [ "qu\"ote"; "2" ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' csv in
  (match lines with
  | header :: row1 :: row2 :: _ ->
      Alcotest.(check string) "header" "a,b" header;
      Alcotest.(check string) "quoted comma" "\"x,y\",plain" row1;
      Alcotest.(check string) "escaped quote" "\"qu\"\"ote\",2" row2
  | _ -> Alcotest.fail "csv shape");
  let path = Filename.temp_file "scnoise" ".csv" in
  Table.save_csv t path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  if len <= 0 then Alcotest.fail "csv file empty"

let test_series_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Table.series: length mismatch") (fun () ->
      ignore (Table.series [| 1.0; 2.0 |] [ [| 1.0 |] ]))

(* --- Ascii_plot --- *)

let test_plot_renders () =
  let module P = Scnoise_util.Ascii_plot in
  let xs = Grid.linspace 0.0 10.0 50 in
  let ys = Array.map (fun x -> sin x) xs in
  let s = P.render ~width:40 ~height:10 xs ys in
  let lines = String.split_on_char '\n' s in
  (* label + 10 grid rows + axis + x annotation + trailing *)
  if List.length lines < 13 then Alcotest.fail "plot too short";
  if not (String.exists (fun c -> c = '*') s) then Alcotest.fail "no markers"

let test_plot_log_axis_drops_nonpositive () =
  let module P = Scnoise_util.Ascii_plot in
  let xs = [| 0.0; 1.0; 10.0; 100.0 |] in
  let ys = [| 1.0; 2.0; 3.0; 4.0 |] in
  (* x = 0 dropped silently on a log axis *)
  ignore (P.render ~x_log:true xs ys)

let test_plot_validation () =
  let module P = Scnoise_util.Ascii_plot in
  (match P.render [| 1.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  match P.render ~x_log:true [| -1.0; 0.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no usable points accepted"

let test_plot_flat_series () =
  let module P = Scnoise_util.Ascii_plot in
  (* constant y must not divide by zero *)
  ignore (P.render (Grid.linspace 0.0 1.0 10) (Array.make 10 5.0))

(* --- qcheck properties --- *)

let prop_db_roundtrip =
  QCheck.Test.make ~count:200 ~name:"db roundtrip on positive powers"
    QCheck.(float_range 1e-20 1e20)
    (fun p -> abs_float (Db.to_power (Db.of_power p) -. p) <= 1e-9 *. p)

let prop_linspace_monotone =
  QCheck.Test.make ~count:200 ~name:"linspace monotone when a < b"
    QCheck.(pair (float_range (-1e6) 1e6) (int_range 2 200))
    (fun (a, n) ->
      let b = a +. 1.0 in
      let g = Grid.linspace a b n in
      let ok = ref true in
      for i = 0 to n - 2 do
        if g.(i + 1) <= g.(i) then ok := false
      done;
      !ok)

let prop_trapezoid_linearity =
  QCheck.Test.make ~count:100 ~name:"trapezoid is linear in the integrand"
    QCheck.(list_of_size (Gen.int_range 2 40) (float_range (-10.) 10.))
    (fun ys ->
      let ys = Array.of_list ys in
      let n = Array.length ys in
      let xs = Grid.linspace 0.0 1.0 n in
      let a = Grid.trapezoid xs (Array.map (fun y -> 2.0 *. y) ys) in
      let b = 2.0 *. Grid.trapezoid xs ys in
      abs_float (a -. b) <= 1e-9 *. (1.0 +. abs_float b))

let () =
  Alcotest.run "util"
    [
      ( "const",
        [
          Alcotest.test_case "thermal psd" `Quick test_thermal_psd;
          Alcotest.test_case "thermal psd invalid" `Quick test_thermal_psd_invalid;
          Alcotest.test_case "thermal voltage" `Quick test_thermal_voltage;
        ] );
      ( "db",
        [
          Alcotest.test_case "roundtrip" `Quick test_db_roundtrip;
          Alcotest.test_case "known values" `Quick test_db_known;
          Alcotest.test_case "non-positive" `Quick test_db_nonpositive;
          QCheck_alcotest.to_alcotest prop_db_roundtrip;
        ] );
      ( "grid",
        [
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "linspace single" `Quick test_linspace_single;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "logspace invalid" `Quick test_logspace_invalid;
          Alcotest.test_case "arange" `Quick test_arange;
          Alcotest.test_case "trapezoid linear" `Quick test_trapezoid_exact_linear;
          Alcotest.test_case "trapezoid uniform" `Quick test_trapezoid_uniform_matches;
          Alcotest.test_case "simpson cubic" `Quick test_simpson_exact_cubic;
          Alcotest.test_case "simpson even" `Quick test_simpson_even_count;
          QCheck_alcotest.to_alcotest prop_linspace_monotone;
          QCheck_alcotest.to_alcotest prop_trapezoid_linearity;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pad short row" `Quick test_table_pad_short_row;
          Alcotest.test_case "reject long row" `Quick test_table_reject_long_row;
          Alcotest.test_case "series mismatch" `Quick test_series_mismatch;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "log axis" `Quick test_plot_log_axis_drops_nonpositive;
          Alcotest.test_case "validation" `Quick test_plot_validation;
          Alcotest.test_case "flat" `Quick test_plot_flat_series;
        ] );
    ]
