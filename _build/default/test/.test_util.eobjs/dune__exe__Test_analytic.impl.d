test/test_analytic.ml: Alcotest Array Float List QCheck QCheck_alcotest Scnoise_analytic Scnoise_util
