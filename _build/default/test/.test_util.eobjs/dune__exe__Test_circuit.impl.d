test/test_circuit.ml: Alcotest Array Float Format Scnoise_circuit Scnoise_core Scnoise_linalg Scnoise_util String
