test/test_property.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Scnoise_circuit Scnoise_core Scnoise_linalg Scnoise_noise Scnoise_util
