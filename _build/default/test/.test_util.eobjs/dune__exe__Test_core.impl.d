test/test_core.ml: Alcotest Array List Printf Scnoise_analytic Scnoise_circuit Scnoise_circuits Scnoise_core Scnoise_linalg Scnoise_util
