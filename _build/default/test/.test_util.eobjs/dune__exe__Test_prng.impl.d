test/test_prng.ml: Alcotest Array Float QCheck QCheck_alcotest Scnoise_prng
