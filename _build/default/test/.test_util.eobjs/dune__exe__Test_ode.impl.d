test/test_ode.ml: Alcotest Array List QCheck QCheck_alcotest Scnoise_linalg Scnoise_ode
