test/test_analytic.mli:
