test/test_dtime.ml: Alcotest Array List Printf Scnoise_analytic Scnoise_circuits Scnoise_core Scnoise_dtime Scnoise_linalg Scnoise_util
