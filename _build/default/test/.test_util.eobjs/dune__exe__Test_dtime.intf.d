test/test_dtime.mli:
