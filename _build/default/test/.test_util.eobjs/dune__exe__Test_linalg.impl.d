test/test_linalg.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Random Scnoise_linalg String
