test/test_circuits.ml: Alcotest Array Float List Scnoise_analytic Scnoise_circuit Scnoise_circuits Scnoise_core Scnoise_linalg Scnoise_util String
