test/test_util.ml: Alcotest Array Filename Gen List QCheck QCheck_alcotest Scnoise_util String Sys
