test/test_noise.ml: Alcotest Array List Printf Scnoise_analytic Scnoise_circuit Scnoise_circuits Scnoise_core Scnoise_noise Scnoise_util
