module Lti = Scnoise_analytic.Lti
module Switched_rc = Scnoise_analytic.Switched_rc
module Ideal_sc = Scnoise_analytic.Ideal_sc
module Const = Scnoise_util.Const
module Grid = Scnoise_util.Grid

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

(* --- Lti --- *)

let test_rc_psd_dc () =
  let r = 1e3 in
  check_close "2kTR at DC" (2.0 *. Const.kt () *. r)
    (Lti.rc_lowpass_psd ~r ~c:1e-9 0.0)

let test_rc_psd_corner () =
  let r = 1e3 and c = 1e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  check_close ~eps:1e-9 "half power at corner"
    (Const.kt () *. r)
    (Lti.rc_lowpass_psd ~r ~c fc)

let test_rc_total_noise_parseval () =
  (* ∫ S df over (-inf, inf) = kT/C; numerically to ~0.1% *)
  let r = 1e3 and c = 1e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  let freqs = Grid.linspace 0.0 (3000.0 *. fc) 3_000_000 in
  let s = Array.map (fun f -> Lti.rc_lowpass_psd ~r ~c f) freqs in
  let integral = 2.0 *. Grid.trapezoid_uniform (freqs.(1) -. freqs.(0)) s in
  let expected = Lti.rc_total_noise ~c () in
  if abs_float (integral -. expected) > 2e-3 *. expected then
    Alcotest.failf "Parseval: %g vs %g" integral expected

let test_sinc () =
  check_close "sinc 0" 1.0 (Lti.sinc 0.0);
  check_close "sinc pi" 0.0 ~eps:1e-12 (Lti.sinc Float.pi);
  check_close "sinc 1" (sin 1.0) (Lti.sinc 1.0)

let test_lorentzian () =
  check_close "dc" 4.0 (Lti.lorentzian ~s0:4.0 ~pole_hz:100.0 0.0);
  check_close "pole" 2.0 (Lti.lorentzian ~s0:4.0 ~pole_hz:100.0 100.0)

(* --- Switched_rc closed form --- *)

let make ?(duty = 0.5) ?(t_over_rc = 5.0) () =
  let r = 1e3 and c = 1e-9 in
  Switched_rc.make ~r ~c ~period:(t_over_rc *. r *. c) ~duty ()

let test_variance_is_kt_over_c () =
  let t = make () in
  check_close "kT/C" (Const.kt () /. 1e-9) (Switched_rc.variance t)

let test_duty_to_one_approaches_lti () =
  (* as duty -> 1 the spectrum approaches the plain RC Lorentzian *)
  let t = make ~duty:0.999 () in
  List.iter
    (fun f ->
      let s = Switched_rc.psd t f in
      let s_lti = Switched_rc.lti_limit t f in
      if abs_float (s -. s_lti) > 0.02 *. s_lti then
        Alcotest.failf "duty->1 limit at f=%g: %g vs %g" f s s_lti)
    [ 0.0; 1e4; 1e5; 1e6 ]

let test_dc_value_increases_with_open_time () =
  (* longer hold -> more low-frequency (sampled) power *)
  let s_short = Switched_rc.psd (make ~t_over_rc:5.0 ()) 0.0 in
  let s_long = Switched_rc.psd (make ~t_over_rc:20.0 ()) 0.0 in
  if s_long <= s_short then
    Alcotest.fail "longer open interval should raise the DC plateau"

let test_sample_hold_regime () =
  (* when the switch is open for many RC, the held segments form a pulse
     train of i.i.d. kT/C samples of width (1-d)T, whose DC PSD is
     var * T * (1-d)^2; the conducting interval contributes only the
     (much smaller) live RC noise *)
  let t_over_rc = 2000.0 in
  let duty = 0.5 in
  let t = make ~t_over_rc ~duty () in
  let var = Switched_rc.variance t in
  let period = t.Switched_rc.period in
  let s0 = Switched_rc.psd t 0.0 in
  let expected = var *. period *. ((1.0 -. duty) ** 2.0) in
  if abs_float (s0 -. expected) > 0.02 *. expected then
    Alcotest.failf "sample-hold regime: %g vs %g" s0 expected

let test_psd_even_and_positive () =
  let t = make ~duty:0.25 ~t_over_rc:20.0 () in
  Array.iter
    (fun f ->
      let s = Switched_rc.psd t f in
      if s < 0.0 then Alcotest.failf "negative PSD at %g" f;
      check_close ~eps:1e-10 "even" s (Switched_rc.psd t (-.f)))
    (Grid.logspace 1.0 1e8 50)

let test_psd_parseval () =
  let t = make ~t_over_rc:5.0 () in
  let fmax = 3000.0 /. t.Switched_rc.period in
  let freqs = Grid.linspace 0.0 fmax 300_000 in
  let s = Array.map (Switched_rc.psd t) freqs in
  let integral = 2.0 *. Grid.trapezoid freqs s in
  let var = Switched_rc.variance t in
  if abs_float (integral -. var) > 0.02 *. var then
    Alcotest.failf "Parseval: ∫S = %g vs kT/C = %g" integral var

let test_make_validation () =
  Alcotest.check_raises "duty" (Invalid_argument "Switched_rc.make: need 0 < duty < 1")
    (fun () ->
      ignore (Switched_rc.make ~r:1.0 ~c:1.0 ~period:1.0 ~duty:1.0 ()))

(* --- Ideal_sc --- *)

let test_kt_over_c () =
  check_close "kT/C" (Const.kt () /. 1e-12) (Ideal_sc.kt_over_c 1e-12)

let test_sample_hold_nulls () =
  let s = Ideal_sc.sample_hold_psd ~var:1.0 ~period:1e-3 in
  check_close "dc" 1e-3 (s 0.0);
  check_close ~eps:1e-12 "null at 1/T" 0.0 (s 1e3);
  check_close ~eps:1e-12 "null at 2/T" 0.0 (s 2e3)

let test_sample_hold_parseval () =
  let var = 2.5 and period = 1e-3 in
  let freqs = Grid.linspace 0.0 5e6 2_000_000 in
  let s = Array.map (Ideal_sc.sample_hold_psd ~var ~period) freqs in
  let integral = 2.0 *. Grid.trapezoid freqs s in
  if abs_float (integral -. var) > 0.01 *. var then
    Alcotest.failf "Parseval: %g vs %g" integral var

let test_first_order_dt () =
  let var = 1.0 and period = 1e-3 and pole = 0.5 in
  (* at DC: hold * 1/(1-pole)^2 *)
  check_close "dc gain"
    (1e-3 /. ((1.0 -. pole) ** 2.0))
    (Ideal_sc.first_order_dt_psd ~var ~period ~pole 0.0);
  check_close "total noise" (1.0 /. 0.75)
    (Ideal_sc.total_noise_first_order ~var ~pole);
  Alcotest.check_raises "pole bound"
    (Invalid_argument "Ideal_sc.first_order_dt_psd: |pole| >= 1") (fun () ->
      ignore (Ideal_sc.first_order_dt_psd ~var ~period ~pole:1.0 0.0))

let prop_switched_rc_bounded_by_lti_at_high_f =
  (* far above both the clock and the RC corner, the sampled component
     dies as 1/f^2 faster than the direct one: S <= 2 * LTI envelope *)
  QCheck.Test.make ~count:50 ~name:"high-frequency tail bounded"
    QCheck.(float_range 10.0 50.0)
    (fun mult ->
      let t = make ~t_over_rc:5.0 () in
      let f = mult /. (2.0 *. Float.pi *. 1e-6) in
      Switched_rc.psd t f <= 2.0 *. Switched_rc.lti_limit t f +. 1e-30)

let () =
  Alcotest.run "analytic"
    [
      ( "lti",
        [
          Alcotest.test_case "dc" `Quick test_rc_psd_dc;
          Alcotest.test_case "corner" `Quick test_rc_psd_corner;
          Alcotest.test_case "parseval" `Slow test_rc_total_noise_parseval;
          Alcotest.test_case "sinc" `Quick test_sinc;
          Alcotest.test_case "lorentzian" `Quick test_lorentzian;
        ] );
      ( "switched_rc",
        [
          Alcotest.test_case "variance" `Quick test_variance_is_kt_over_c;
          Alcotest.test_case "duty->1" `Quick test_duty_to_one_approaches_lti;
          Alcotest.test_case "hold raises DC" `Quick test_dc_value_increases_with_open_time;
          Alcotest.test_case "sample-hold regime" `Quick test_sample_hold_regime;
          Alcotest.test_case "even & positive" `Quick test_psd_even_and_positive;
          Alcotest.test_case "parseval" `Slow test_psd_parseval;
          Alcotest.test_case "validation" `Quick test_make_validation;
          QCheck_alcotest.to_alcotest prop_switched_rc_bounded_by_lti_at_high_f;
        ] );
      ( "ideal_sc",
        [
          Alcotest.test_case "kT/C" `Quick test_kt_over_c;
          Alcotest.test_case "sinc nulls" `Quick test_sample_hold_nulls;
          Alcotest.test_case "parseval" `Slow test_sample_hold_parseval;
          Alcotest.test_case "first order" `Quick test_first_order_dt;
        ] );
    ]
