module Xoshiro = Scnoise_prng.Xoshiro
module Gaussian = Scnoise_prng.Gaussian

let test_determinism () =
  let a = Xoshiro.create 42L and b = Xoshiro.create 42L in
  for _ = 1 to 100 do
    if Xoshiro.next a <> Xoshiro.next b then
      Alcotest.fail "same seed must give identical streams"
  done

let test_seed_sensitivity () =
  let a = Xoshiro.create 1L and b = Xoshiro.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next a = Xoshiro.next b then incr same
  done;
  if !same > 2 then Alcotest.fail "different seeds should diverge"

let test_copy_independent () =
  let a = Xoshiro.create 7L in
  ignore (Xoshiro.next a);
  let b = Xoshiro.copy a in
  let xa = Xoshiro.next a in
  let xb = Xoshiro.next b in
  if xa <> xb then Alcotest.fail "copy must continue the same stream";
  ignore (Xoshiro.next a);
  (* and mutating a must not touch b *)
  let xa2 = Xoshiro.next a and xb2 = Xoshiro.next b in
  ignore xa2;
  ignore xb2

let test_float01_range () =
  let g = Xoshiro.create 99L in
  for _ = 1 to 10_000 do
    let x = Xoshiro.float01 g in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float01 out of range: %g" x
  done

let test_float01_mean () =
  let g = Xoshiro.create 5L in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Xoshiro.float01 g
  done;
  let mean = !acc /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.01 then
    Alcotest.failf "uniform mean should be ~0.5, got %g" mean

let test_jump_changes_stream () =
  let a = Xoshiro.create 11L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next a = Xoshiro.next b then incr same
  done;
  if !same > 2 then Alcotest.fail "jumped stream should not overlap"

let test_gaussian_moments () =
  let g = Gaussian.create 123L in
  let n = 200_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 and sum4 = ref 0.0 in
  for _ = 1 to n do
    let x = Gaussian.sample g in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x);
    sum4 := !sum4 +. (x *. x *. x *. x)
  done;
  let nf = float_of_int n in
  let mean = !sum /. nf in
  let var = (!sum2 /. nf) -. (mean *. mean) in
  let kurt = !sum4 /. nf /. (var *. var) in
  if abs_float mean > 0.02 then Alcotest.failf "mean %g too far from 0" mean;
  if abs_float (var -. 1.0) > 0.02 then Alcotest.failf "variance %g" var;
  if abs_float (kurt -. 3.0) > 0.1 then Alcotest.failf "kurtosis %g" kurt

let test_gaussian_scaled () =
  let g = Gaussian.create 321L in
  let n = 100_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let x = Gaussian.sample_scaled g ~mean:3.0 ~sigma:2.0 in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x)
  done;
  let nf = float_of_int n in
  let mean = !sum /. nf in
  let var = (!sum2 /. nf) -. (mean *. mean) in
  if abs_float (mean -. 3.0) > 0.05 then Alcotest.failf "mean %g" mean;
  if abs_float (var -. 4.0) > 0.1 then Alcotest.failf "var %g" var

let test_fill () =
  let g = Gaussian.create 55L in
  let arr = Array.make 1000 nan in
  Gaussian.fill g arr;
  Array.iter
    (fun x -> if Float.is_nan x then Alcotest.fail "fill left a nan")
    arr

let prop_float01_in_range =
  QCheck.Test.make ~count:100 ~name:"float01 in [0,1) for any seed"
    QCheck.int64 (fun seed ->
      let g = Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Xoshiro.float01 g in
        if x < 0.0 || x >= 1.0 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "prng"
    [
      ( "xoshiro",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "float01 range" `Quick test_float01_range;
          Alcotest.test_case "float01 mean" `Quick test_float01_mean;
          Alcotest.test_case "jump" `Quick test_jump_changes_stream;
          QCheck_alcotest.to_alcotest prop_float01_in_range;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "moments" `Slow test_gaussian_moments;
          Alcotest.test_case "scaled" `Quick test_gaussian_scaled;
          Alcotest.test_case "fill" `Quick test_fill;
        ] );
    ]
