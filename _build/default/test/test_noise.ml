module Db = Scnoise_util.Db
module Const = Scnoise_util.Const
module Clock = Scnoise_circuit.Clock
module Netlist = Scnoise_circuit.Netlist
module Compile = Scnoise_circuit.Compile
module Pwl = Scnoise_circuit.Pwl
module Psd = Scnoise_core.Psd
module Esd = Scnoise_noise.Esd_transient
module Mc = Scnoise_noise.Monte_carlo
module A_src = Scnoise_analytic.Switched_rc
module C_src = Scnoise_circuits.Switched_rc
module Lti = Scnoise_analytic.Lti

let check_db ?(tol = 0.05) msg expected actual =
  let d = abs_float (Db.of_power expected -. Db.of_power actual) in
  if d > tol then
    Alcotest.failf "%s: %g vs %g differ by %.3f dB (tol %.3f)" msg expected
      actual d tol

let check_close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let switched_rc ?(t_over_rc = 5.0) ?(duty = 0.5) () =
  C_src.build (C_src.with_ratio ~t_over_rc ~duty ())

let plain_rc r c =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.resistor ~name:"R" nl out Netlist.ground r;
  Netlist.capacitor nl out Netlist.ground c;
  let sys = Compile.compile nl (Clock.make [ 1e-6 ]) in
  (sys, Pwl.observable sys "out")

(* --- brute-force engine --- *)

let test_esd_matches_analytic () =
  let b = switched_rc () in
  let a =
    A_src.make ~r:b.C_src.params.C_src.r ~c:b.C_src.params.C_src.c
      ~period:b.C_src.params.C_src.period ~duty:b.C_src.params.C_src.duty ()
  in
  List.iter
    (fun f ->
      let r = Esd.psd ~tol_db:0.01 b.C_src.sys ~output:b.C_src.output ~f in
      (* convergence tolerance dominates the error budget *)
      check_db ~tol:0.1 (Printf.sprintf "f=%g" f) (A_src.psd a f) r.Esd.psd)
    [ 1e3; 1e5; 5e5 ]

let test_esd_matches_mft () =
  let b = switched_rc ~t_over_rc:20.0 ~duty:0.25 () in
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  List.iter
    (fun f ->
      let r = Esd.psd ~tol_db:0.01 b.C_src.sys ~output:b.C_src.output ~f in
      check_db ~tol:0.1 (Printf.sprintf "f=%g" f) (Psd.psd eng ~f) r.Esd.psd)
    [ 1e3; 2e5 ]

let test_esd_history_monotone_time () =
  let b = switched_rc () in
  let r = Esd.psd b.C_src.sys ~output:b.C_src.output ~f:1e4 in
  let times = Array.map fst r.Esd.history in
  for i = 1 to Array.length times - 1 do
    if times.(i) <= times.(i - 1) then Alcotest.fail "history times not increasing"
  done;
  Alcotest.(check int) "history length = periods" r.Esd.periods
    (Array.length r.Esd.history)

let test_esd_convergence_tightens () =
  (* a tighter tolerance cannot converge in fewer periods *)
  let b = switched_rc () in
  let loose = Esd.psd ~tol_db:0.5 b.C_src.sys ~output:b.C_src.output ~f:1e4 in
  let tight = Esd.psd ~tol_db:0.01 b.C_src.sys ~output:b.C_src.output ~f:1e4 in
  if tight.Esd.periods < loose.Esd.periods then
    Alcotest.fail "tighter tolerance converged faster";
  (* and the tight run is closer to the mft value *)
  let eng = Psd.prepare b.C_src.sys ~output:b.C_src.output in
  let exact = Psd.psd eng ~f:1e4 in
  let err r = abs_float (Db.of_power r.Esd.psd -. Db.of_power exact) in
  if err tight > err loose +. 0.01 then
    Alcotest.fail "tighter tolerance ended farther from the reference"

let test_esd_max_periods () =
  let b = switched_rc () in
  match
    Esd.psd ~tol_db:1e-9 ~max_periods:3 b.C_src.sys ~output:b.C_src.output
      ~f:1e4
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected max_periods failure"

let test_esd_sweep () =
  let b = switched_rc () in
  let s = Esd.sweep b.C_src.sys ~output:b.C_src.output [| 1e3; 1e5 |] in
  Alcotest.(check int) "two points" 2 (Array.length s);
  if s.(0) <= s.(1) then Alcotest.fail "spectrum should fall with frequency here"

let test_esd_lti () =
  let r = 1e3 and c = 1e-9 in
  let sys, out = plain_rc r c in
  (* starting from zero initial conditions the running estimate carries
     an O(1/t) startup deficit; 0.3 dB reflects the method's honest
     accuracy at this stopping tolerance *)
  let res = Esd.psd ~tol_db:0.01 sys ~output:out ~f:0.0 in
  check_db ~tol:0.3 "2kTR" (2.0 *. Const.kt () *. r) res.Esd.psd

let test_esd_periodic_init_reduces_bias () =
  (* starting from the periodic covariance removes the covariance part of
     the startup deficit (the cross-spectral density still starts from
     zero): at equal stopping tolerance the `Periodic run must land at
     least as close to the reference as the `Zero run *)
  let r = 1e3 and c = 1e-9 in
  let sys, out = plain_rc r c in
  let reference = 2.0 *. Const.kt () *. r in
  let err init =
    let res = Esd.psd ~tol_db:0.01 ~init sys ~output:out ~f:0.0 in
    abs_float (Db.of_power res.Esd.psd -. Db.of_power reference)
  in
  let e_zero = err `Zero and e_per = err `Periodic in
  if e_per > e_zero +. 0.005 then
    Alcotest.failf "periodic init worse: %g vs %g dB" e_per e_zero;
  if e_per > 0.2 then
    Alcotest.failf "periodic init should be within 0.2 dB, got %g dB" e_per

(* --- Monte-Carlo engine --- *)

let test_mc_plain_rc () =
  let r = 1e3 and c = 1e-9 in
  let sys, out = plain_rc r c in
  let est =
    Mc.estimate ~seed:7L ~paths:8 ~segments_per_path:8 sys ~output:out
      ~freqs:[| 0.0; 1.59155e5 |]
  in
  check_close ~eps:0.03 "variance kT/C" (Const.kt () /. c) est.Mc.variance;
  check_db ~tol:0.7 "DC PSD" (Lti.rc_lowpass_psd ~r ~c 0.0) est.Mc.psd.(0);
  check_db ~tol:0.7 "corner PSD"
    (Lti.rc_lowpass_psd ~r ~c 1.59155e5)
    est.Mc.psd.(1)

let test_mc_switched_rc () =
  let b = switched_rc () in
  let a =
    A_src.make ~r:b.C_src.params.C_src.r ~c:b.C_src.params.C_src.c
      ~period:b.C_src.params.C_src.period ~duty:b.C_src.params.C_src.duty ()
  in
  let freqs = [| 1e4; 1e5 |] in
  let est =
    Mc.estimate ~seed:11L ~paths:12 ~segments_per_path:12 b.C_src.sys
      ~output:b.C_src.output ~freqs
  in
  Array.iteri
    (fun i f ->
      check_db ~tol:0.8 (Printf.sprintf "f=%g" f) (A_src.psd a f) est.Mc.psd.(i))
    freqs;
  check_close ~eps:0.05 "variance" (A_src.variance a) est.Mc.variance

let test_mc_deterministic_given_seed () =
  let b = switched_rc () in
  let run () =
    (Mc.estimate ~seed:3L ~paths:2 ~segments_per_path:2 b.C_src.sys
       ~output:b.C_src.output ~freqs:[| 1e4 |])
      .Mc.psd.(0)
  in
  if run () <> run () then Alcotest.fail "same seed must reproduce"

let test_mc_seed_variation () =
  let b = switched_rc () in
  let run seed =
    (Mc.estimate ~seed ~paths:2 ~segments_per_path:2 b.C_src.sys
       ~output:b.C_src.output ~freqs:[| 1e4 |])
      .Mc.psd.(0)
  in
  if run 1L = run 2L then Alcotest.fail "different seeds should differ"

let test_mc_segment_count () =
  let b = switched_rc () in
  let est =
    Mc.estimate ~paths:3 ~segments_per_path:4 b.C_src.sys
      ~output:b.C_src.output ~freqs:[| 1e4 |]
  in
  Alcotest.(check int) "segments" 12 est.Mc.segments

let () =
  Alcotest.run "noise"
    [
      ( "esd_transient",
        [
          Alcotest.test_case "matches analytic" `Quick test_esd_matches_analytic;
          Alcotest.test_case "matches mft" `Quick test_esd_matches_mft;
          Alcotest.test_case "history" `Quick test_esd_history_monotone_time;
          Alcotest.test_case "tolerance" `Quick test_esd_convergence_tightens;
          Alcotest.test_case "max periods" `Quick test_esd_max_periods;
          Alcotest.test_case "sweep" `Quick test_esd_sweep;
          Alcotest.test_case "lti" `Quick test_esd_lti;
          Alcotest.test_case "periodic init" `Quick test_esd_periodic_init_reduces_bias;
        ] );
      ( "monte_carlo",
        [
          Alcotest.test_case "plain rc" `Slow test_mc_plain_rc;
          Alcotest.test_case "switched rc" `Slow test_mc_switched_rc;
          Alcotest.test_case "deterministic" `Quick test_mc_deterministic_given_seed;
          Alcotest.test_case "seed variation" `Quick test_mc_seed_variation;
          Alcotest.test_case "segment count" `Quick test_mc_segment_count;
        ] );
    ]
