(** LU factorisation with partial pivoting for complex square matrices.

    Used by the MFT engine for the per-frequency periodic boundary solve
    [(I - e^{-jwT} Phi) P0 = r]. *)

type t

exception Singular of int

val factor : Cmat.t -> t

val solve : t -> Cvec.t -> Cvec.t

val det : t -> Cx.t

val inverse : t -> Cmat.t

val solve_dense : Cmat.t -> Cvec.t -> Cvec.t
