(** Eigenvalues of real square matrices.

    Householder reduction to upper Hessenberg form followed by the
    Francis implicit double-shift QR iteration (eigenvalues only).  Used
    for Floquet-multiplier / stability diagnostics of switched circuits
    and for analytic cross-checks in tests. *)

exception No_convergence of int
(** Raised with the stuck eigenvalue index if the QR iteration exceeds
    its iteration budget. *)

val hessenberg : Mat.t -> Mat.t
(** Orthogonal similarity reduction to upper Hessenberg form (returns a
    fresh matrix; the input is not modified). *)

val eigenvalues : Mat.t -> Cx.t array
(** All eigenvalues (with multiplicity), in no particular order. *)

val spectral_radius : Mat.t -> float
(** Largest eigenvalue modulus. *)

val spectral_abscissa : Mat.t -> float
(** Largest eigenvalue real part (negative iff Hurwitz-stable). *)

val is_schur_stable : ?margin:float -> Mat.t -> bool
(** [is_schur_stable phi] is true when the spectral radius is
    < 1 - margin (default margin 0). *)
