exception No_convergence of int

(* Householder similarity reduction to upper Hessenberg form. *)
let hessenberg m =
  if not (Mat.is_square m) then invalid_arg "Eig.hessenberg: not square";
  let n = Mat.rows m in
  let a = Array.init n (fun i -> Array.init n (fun j -> Mat.get m i j)) in
  for k = 0 to n - 3 do
    (* Householder vector annihilating a.(k+2..n-1).(k). *)
    let alpha = ref 0.0 in
    for i = k + 1 to n - 1 do
      alpha := !alpha +. (a.(i).(k) *. a.(i).(k))
    done;
    let alpha = sqrt !alpha in
    if alpha > 0.0 then begin
      let alpha = if a.(k + 1).(k) > 0.0 then -.alpha else alpha in
      let v = Array.make n 0.0 in
      v.(k + 1) <- a.(k + 1).(k) -. alpha;
      for i = k + 2 to n - 1 do
        v.(i) <- a.(i).(k)
      done;
      let vnorm2 = ref 0.0 in
      for i = k + 1 to n - 1 do
        vnorm2 := !vnorm2 +. (v.(i) *. v.(i))
      done;
      if !vnorm2 > 0.0 then begin
        let beta = 2.0 /. !vnorm2 in
        (* A <- (I - beta v vᵀ) A *)
        for j = 0 to n - 1 do
          let s = ref 0.0 in
          for i = k + 1 to n - 1 do
            s := !s +. (v.(i) *. a.(i).(j))
          done;
          let s = beta *. !s in
          for i = k + 1 to n - 1 do
            a.(i).(j) <- a.(i).(j) -. (s *. v.(i))
          done
        done;
        (* A <- A (I - beta v vᵀ) *)
        for i = 0 to n - 1 do
          let s = ref 0.0 in
          for j = k + 1 to n - 1 do
            s := !s +. (a.(i).(j) *. v.(j))
          done;
          let s = beta *. !s in
          for j = k + 1 to n - 1 do
            a.(i).(j) <- a.(i).(j) -. (s *. v.(j))
          done
        done
      end
    end;
    (* Clean below the first subdiagonal in column k. *)
    for i = k + 2 to n - 1 do
      a.(i).(k) <- 0.0
    done
  done;
  Mat.of_arrays a

let sign_with magnitude reference =
  if reference >= 0.0 then abs_float magnitude else -.abs_float magnitude

(* Francis implicit double-shift QR on an upper Hessenberg matrix;
   classic EISPACK "hqr" (eigenvalues only), 0-based. *)
let hqr a n =
  let wr = Array.make n 0.0 and wi = Array.make n 0.0 in
  let anorm = ref 0.0 in
  for i = 0 to n - 1 do
    for j = max (i - 1) 0 to n - 1 do
      anorm := !anorm +. abs_float a.(i).(j)
    done
  done;
  let anorm = !anorm in
  let eps = epsilon_float in
  let t = ref 0.0 in
  let nn = ref (n - 1) in
  while !nn >= 0 do
    let its = ref 0 in
    let finished_block = ref false in
    while not !finished_block do
      (* Find l such that the subdiagonal element a.(l).(l-1) is
         negligible (or l = 0). *)
      let l = ref 0 in
      (try
         for ll = !nn downto 1 do
           let s = abs_float a.(ll - 1).(ll - 1) +. abs_float a.(ll).(ll) in
           let s = if s = 0.0 then anorm else s in
           if abs_float a.(ll).(ll - 1) <= eps *. s then begin
             a.(ll).(ll - 1) <- 0.0;
             l := ll;
             raise Exit
           end
         done
       with Exit -> ());
      let l = !l in
      let x = a.(!nn).(!nn) in
      if l = !nn then begin
        (* one real root *)
        wr.(!nn) <- x +. !t;
        wi.(!nn) <- 0.0;
        decr nn;
        finished_block := true
      end
      else begin
        let y = a.(!nn - 1).(!nn - 1) in
        let w = a.(!nn).(!nn - 1) *. a.(!nn - 1).(!nn) in
        if l = !nn - 1 then begin
          (* two roots from the trailing 2x2 block *)
          let p = 0.5 *. (y -. x) in
          let q = (p *. p) +. w in
          let z = sqrt (abs_float q) in
          let x = x +. !t in
          if q >= 0.0 then begin
            let z = p +. sign_with z p in
            wr.(!nn - 1) <- x +. z;
            wr.(!nn) <- (if z <> 0.0 then x -. (w /. z) else x +. z);
            wi.(!nn - 1) <- 0.0;
            wi.(!nn) <- 0.0
          end
          else begin
            wr.(!nn - 1) <- x +. p;
            wr.(!nn) <- x +. p;
            wi.(!nn - 1) <- z;
            wi.(!nn) <- -.z
          end;
          nn := !nn - 2;
          finished_block := true
        end
        else begin
          if !its = 30 then raise (No_convergence !nn);
          let x = ref x and y = ref y and w = ref w in
          if !its = 10 || !its = 20 then begin
            (* exceptional shift *)
            t := !t +. !x;
            for i = 0 to !nn do
              a.(i).(i) <- a.(i).(i) -. !x
            done;
            let s =
              abs_float a.(!nn).(!nn - 1) +. abs_float a.(!nn - 1).(!nn - 2)
            in
            x := 0.75 *. s;
            y := !x;
            w := -0.4375 *. s *. s
          end;
          incr its;
          (* Look for two consecutive small subdiagonal elements. *)
          let p = ref 0.0 and q = ref 0.0 and r = ref 0.0 in
          let m = ref (!nn - 2) in
          (try
             while !m >= l do
               let z = a.(!m).(!m) in
               let rr = !x -. z in
               let ss = !y -. z in
               p := (((rr *. ss) -. !w) /. a.(!m + 1).(!m)) +. a.(!m).(!m + 1);
               q := a.(!m + 1).(!m + 1) -. z -. rr -. ss;
               r := a.(!m + 2).(!m + 1);
               let s = abs_float !p +. abs_float !q +. abs_float !r in
               p := !p /. s;
               q := !q /. s;
               r := !r /. s;
               if !m = l then raise Exit;
               let u =
                 abs_float a.(!m).(!m - 1)
                 *. (abs_float !q +. abs_float !r)
               in
               let v =
                 abs_float !p
                 *. (abs_float a.(!m - 1).(!m - 1)
                    +. abs_float z
                    +. abs_float a.(!m + 1).(!m + 1))
               in
               if u <= eps *. v then raise Exit;
               decr m
             done
           with Exit -> ());
          let m = !m in
          for i = m + 2 to !nn do
            a.(i).(i - 2) <- 0.0
          done;
          for i = m + 3 to !nn do
            a.(i).(i - 3) <- 0.0
          done;
          (* Double QR step over rows l..nn. *)
          for k = m to !nn - 1 do
            if k <> m then begin
              p := a.(k).(k - 1);
              q := a.(k + 1).(k - 1);
              r := (if k <> !nn - 1 then a.(k + 2).(k - 1) else 0.0);
              let xx = abs_float !p +. abs_float !q +. abs_float !r in
              if xx <> 0.0 then begin
                p := !p /. xx;
                q := !q /. xx;
                r := !r /. xx
              end;
              x := xx
            end;
            let s =
              sign_with (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p
            in
            if s <> 0.0 then begin
              if k = m then begin
                if l <> m then a.(k).(k - 1) <- -.a.(k).(k - 1)
              end
              else a.(k).(k - 1) <- -.s *. !x;
              p := !p +. s;
              x := !p /. s;
              y := !q /. s;
              let z = !r /. s in
              q := !q /. !p;
              r := !r /. !p;
              (* row modification *)
              for j = k to !nn do
                let pp = a.(k).(j) +. (!q *. a.(k + 1).(j)) in
                let pp =
                  if k <> !nn - 1 then begin
                    let pp = pp +. (!r *. a.(k + 2).(j)) in
                    a.(k + 2).(j) <- a.(k + 2).(j) -. (pp *. z);
                    pp
                  end
                  else pp
                in
                a.(k + 1).(j) <- a.(k + 1).(j) -. (pp *. !y);
                a.(k).(j) <- a.(k).(j) -. (pp *. !x)
              done;
              (* column modification *)
              let mmin = min !nn (k + 3) in
              for i = l to mmin do
                let pp = (!x *. a.(i).(k)) +. (!y *. a.(i).(k + 1)) in
                let pp =
                  if k <> !nn - 1 then begin
                    let pp = pp +. (z *. a.(i).(k + 2)) in
                    a.(i).(k + 2) <- a.(i).(k + 2) -. (pp *. !r);
                    pp
                  end
                  else pp
                in
                a.(i).(k + 1) <- a.(i).(k + 1) -. (pp *. !q);
                a.(i).(k) <- a.(i).(k) -. pp
              done
            end
          done
          (* inner while continues: not finished_block *)
        end
      end
    done
  done;
  Array.init n (fun i -> Cx.make wr.(i) wi.(i))

let eigenvalues m =
  if not (Mat.is_square m) then invalid_arg "Eig.eigenvalues: not square";
  let n = Mat.rows m in
  if n = 0 then [||]
  else if n = 1 then [| Cx.re (Mat.get m 0 0) |]
  else begin
    let h = hessenberg m in
    let a = Mat.to_arrays h in
    hqr a n
  end

let spectral_radius m =
  Array.fold_left (fun acc z -> max acc (Cx.modulus z)) 0.0 (eigenvalues m)

let spectral_abscissa m =
  Array.fold_left
    (fun acc (z : Cx.t) -> max acc z.re)
    neg_infinity (eigenvalues m)

let is_schur_stable ?(margin = 0.0) m = spectral_radius m < 1.0 -. margin
