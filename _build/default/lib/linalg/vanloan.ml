type t = { phi : Mat.t; qd : Mat.t }

(* Augmented-exponential construction.  Only safe when [norm(A) tau] is
   moderate: the top-left block holds [e^{-A tau}], which overflows for
   strongly stable stiff [A] over a long interval. *)
let discretize_augmented ~a ~q ~tau =
  let n = Mat.rows a in
  if tau = 0.0 then { phi = Mat.identity n; qd = Mat.create n n }
  else begin
    (* M = [[-A, Q], [0, Aᵀ]] * tau ;  expm M = [[F11, F12], [0, F22]]
       with F22 = e^{Aᵀ tau} and Phi F12 = ∫ e^{As} Q e^{Aᵀs} ds. *)
    let m =
      Mat.init (2 * n) (2 * n) (fun i j ->
          if i < n && j < n then -.tau *. Mat.get a i j
          else if i < n then tau *. Mat.get q i (j - n)
          else if j < n then 0.0
          else tau *. Mat.get a (j - n) (i - n))
    in
    let f = Expm.expm m in
    let f12 = Mat.init n n (fun i j -> Mat.get f i (j + n)) in
    let f22 = Mat.init n n (fun i j -> Mat.get f (i + n) (j + n)) in
    let phi = Mat.transpose f22 in
    let qd = Mat.symmetrize (Mat.mul phi f12) in
    { phi; qd }
  end

let propagate_with phi qd k =
  Mat.symmetrize (Mat.add (Mat.mul phi (Mat.mul k (Mat.transpose phi))) qd)

(* Stiffness threshold on [norm(A) tau] below which the augmented form is
   numerically safe. *)
let stiff_threshold = 20.0

let discretize ~a ~q ~tau =
  if not (Mat.is_square a && Mat.is_square q) then
    invalid_arg "Vanloan.discretize: not square";
  let n = Mat.rows a in
  if Mat.rows q <> n then invalid_arg "Vanloan.discretize: size mismatch";
  if tau < 0.0 then invalid_arg "Vanloan.discretize: tau < 0";
  let stiffness = Mat.norm_inf a *. tau in
  if stiffness <= stiff_threshold then discretize_augmented ~a ~q ~tau
  else begin
    (* For a stable stiff phase, use the exact stationary form:
       K(tau) = Phi K(0) Phiᵀ + (Kinf - Phi Kinf Phiᵀ) with
       A Kinf + Kinf Aᵀ + Q = 0 — only decaying exponentials appear. *)
    match Lyapunov.solve_continuous a q with
    | k_inf ->
        let phi = Expm.expm_scaled a tau in
        let qd =
          Mat.symmetrize
            (Mat.sub k_inf (Mat.mul phi (Mat.mul k_inf (Mat.transpose phi))))
        in
        { phi; qd }
    | exception Lu.Singular _ ->
        (* Lossless/marginal modes: fall back to composing short
           augmented steps, each within the safe stiffness range. *)
        let chunks =
          int_of_float (ceil (stiffness /. stiff_threshold))
        in
        let h = tau /. float_of_int chunks in
        let step = discretize_augmented ~a ~q ~tau:h in
        let phi = ref (Mat.identity n) and qd = ref (Mat.create n n) in
        for _ = 1 to chunks do
          phi := Mat.mul step.phi !phi;
          qd := propagate_with step.phi step.qd !qd
        done;
        { phi = !phi; qd = !qd }
  end

let discretize_b ~a ~b ~tau =
  let q = Mat.mul b (Mat.transpose b) in
  discretize ~a ~q ~tau

let propagate d k =
  Mat.symmetrize (Mat.add (Mat.mul d.phi (Mat.mul k (Mat.transpose d.phi))) d.qd)
