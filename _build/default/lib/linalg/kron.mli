(** Kronecker products and matrix vectorisation.

    Vectorisation is column-major ([vec] stacks columns), so the identity
    [vec (A X B) = (Bᵀ ⊗ A) vec X] holds; the Lyapunov solvers rely on
    it. *)

val kron : Mat.t -> Mat.t -> Mat.t
(** Kronecker product [a ⊗ b]. *)

val vec : Mat.t -> Vec.t
(** Column-major vectorisation. *)

val unvec : int -> int -> Vec.t -> Mat.t
(** [unvec rows cols v] inverts {!vec}. *)
