let kron a b =
  let ra = Mat.rows a and ca = Mat.cols a in
  let rb = Mat.rows b and cb = Mat.cols b in
  Mat.init (ra * rb) (ca * cb) (fun i j ->
      Mat.get a (i / rb) (j / cb) *. Mat.get b (i mod rb) (j mod cb))

let vec m =
  let nr = Mat.rows m and nc = Mat.cols m in
  Array.init (nr * nc) (fun k -> Mat.get m (k mod nr) (k / nr))

let unvec nr nc v =
  if Array.length v <> nr * nc then invalid_arg "Kron.unvec: length mismatch";
  Mat.init nr nc (fun i j -> v.((j * nr) + i))
