type t = { nr : int; nc : int; d : Cx.t array }

let create nr nc =
  if nr < 0 || nc < 0 then invalid_arg "Cmat.create: negative size";
  { nr; nc; d = Array.make (nr * nc) Cx.zero }

let init nr nc f =
  let m = create nr nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      m.d.((i * nc) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_real m = init (Mat.rows m) (Mat.cols m) (fun i j -> Cx.re (Mat.get m i j))

let real m = Mat.init m.nr m.nc (fun i j -> (m.d.((i * m.nc) + j)).Cx.re)

let imag m = Mat.init m.nr m.nc (fun i j -> (m.d.((i * m.nc) + j)).Cx.im)

let rows m = m.nr

let cols m = m.nc

let check_bounds m i j name =
  if i < 0 || i >= m.nr || j < 0 || j >= m.nc then
    invalid_arg ("Cmat." ^ name ^ ": index out of bounds")

let get m i j =
  check_bounds m i j "get";
  m.d.((i * m.nc) + j)

let set m i j z =
  check_bounds m i j "set";
  m.d.((i * m.nc) + j) <- z

let copy m = { m with d = Array.copy m.d }

let same_dims a b name =
  if a.nr <> b.nr || a.nc <> b.nc then
    invalid_arg ("Cmat." ^ name ^ ": dimension mismatch")

let add a b =
  same_dims a b "add";
  { a with d = Array.init (Array.length a.d) (fun k -> Cx.( +: ) a.d.(k) b.d.(k)) }

let sub a b =
  same_dims a b "sub";
  { a with d = Array.init (Array.length a.d) (fun k -> Cx.( -: ) a.d.(k) b.d.(k)) }

let scale s m = { m with d = Array.map (fun z -> Cx.( *: ) s z) m.d }

let mul a b =
  if a.nc <> b.nr then invalid_arg "Cmat.mul: inner dimension mismatch";
  let c = create a.nr b.nc in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = a.d.((i * a.nc) + k) in
      if aik <> Cx.zero then begin
        let brow = k * b.nc in
        let crow = i * b.nc in
        for j = 0 to b.nc - 1 do
          c.d.(crow + j) <- Cx.( +: ) c.d.(crow + j) (Cx.( *: ) aik b.d.(brow + j))
        done
      end
    done
  done;
  c

let mul_vec m v =
  if m.nc <> Array.length v then invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init m.nr (fun i ->
      let acc = ref Cx.zero in
      let base = i * m.nc in
      for j = 0 to m.nc - 1 do
        acc := Cx.( +: ) !acc (Cx.( *: ) m.d.(base + j) v.(j))
      done;
      !acc)

let transpose m = init m.nc m.nr (fun i j -> m.d.((j * m.nc) + i))

let adjoint m = init m.nc m.nr (fun i j -> Cx.conj m.d.((j * m.nc) + i))

let max_abs m =
  Array.fold_left (fun acc z -> max acc (Cx.modulus z)) 0.0 m.d

let max_abs_diff a b =
  same_dims a b "max_abs_diff";
  let best = ref 0.0 in
  for k = 0 to Array.length a.d - 1 do
    best := max !best (Cx.modulus (Cx.( -: ) a.d.(k) b.d.(k)))
  done;
  !best

let is_hermitian ?(tol = 1e-12) m =
  m.nr = m.nc && max_abs_diff m (adjoint m) <= tol
