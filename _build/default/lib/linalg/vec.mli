(** Dense real vectors (thin wrappers over [float array]).

    All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val max_abs_diff : t -> t -> float

val map2 : (float -> float -> float) -> t -> t -> t

val pp : Format.formatter -> t -> unit
