(** Continuous and discrete Lyapunov equation solvers.

    These are the workhorses of the periodic-steady-state covariance
    computation: the MFT engine reduces the periodic Lyapunov ODE to the
    discrete equation [X = phi X phiᵀ + q] over one clock period. *)

exception Not_stable of string
(** Raised by the iterative solvers when the iteration fails to contract
    (spectral radius >= 1). *)

val solve_continuous : Mat.t -> Mat.t -> Mat.t
(** [solve_continuous a q] solves [a x + x aᵀ + q = 0] by Kronecker
    vectorisation (exact, O(n^6)); [a] must be Hurwitz for the result to
    be a covariance.  Raises [Lu.Singular] when [a] has eigenvalues
    summing to zero in pairs (e.g. lossless circuits). *)

val solve_discrete_kron : Mat.t -> Mat.t -> Mat.t
(** [solve_discrete_kron phi q] solves [x = phi x phiᵀ + q] exactly by
    vectorisation. *)

val solve_discrete_doubling :
  ?tol:float -> ?max_iter:int -> Mat.t -> Mat.t -> Mat.t
(** Same equation by the doubling iteration
    [x_{k+1} = x_k + phi_k x_k phi_kᵀ], [phi_{k+1} = phi_k²]; requires the
    spectral radius of [phi] to be < 1 and raises {!Not_stable}
    otherwise.  O(n³ log(1/tol)). *)

val solve_discrete : ?prefer_doubling:bool -> Mat.t -> Mat.t -> Mat.t
(** Dispatcher: doubling when requested and possible, Kronecker
    fallback. *)

val residual_discrete : Mat.t -> Mat.t -> Mat.t -> float
(** [residual_discrete phi q x] is [max_abs (x - phi x phiᵀ - q)]; used by
    tests and diagnostics. *)
