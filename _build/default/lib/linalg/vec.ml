type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let check_len a b name =
  if Array.length a <> Array.length b then
    invalid_arg ("Vec." ^ name ^ ": length mismatch")

let add a b =
  check_len a b "add";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_len a b "sub";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_len x y "axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_len a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> max m (abs_float x)) 0.0 a

let max_abs_diff a b =
  check_len a b "max_abs_diff";
  let m = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    m := max !m (abs_float (a.(i) -. b.(i)))
  done;
  !m

let map2 f a b =
  check_len a b "map2";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let pp fmt a =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    a;
  Format.fprintf fmt "|]"
