(** Dense complex vectors. *)

type t = Cx.t array

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> Cx.t) -> t

val of_real : Vec.t -> t

val real : t -> Vec.t

val imag : t -> Vec.t

val copy : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : Cx.t -> t -> t

val scale_re : float -> t -> t

val dot_conj : t -> t -> Cx.t
(** [dot_conj a b] is [sum (conj a_i * b_i)]. *)

val norm2 : t -> float

val norm_inf : t -> float

val max_abs_diff : t -> t -> float
