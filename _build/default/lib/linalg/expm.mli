(** Matrix exponential by Padé(13) approximation with scaling and
    squaring (Higham 2005).

    Exact (to rounding) for the phase-wise-constant state matrices of
    switched-capacitor circuits, which is what makes the Van Loan
    discretisation and the MFT monodromy computation robust against
    stiffness. *)

val expm : Mat.t -> Mat.t
(** [expm a] is [e^a] for a square matrix.  Raises [Invalid_argument] if
    [a] is not square. *)

val expm_scaled : Mat.t -> float -> Mat.t
(** [expm_scaled a t] is [e^(a t)]. *)
