(** Van Loan (1978) discretisation of an LTI stochastic system.

    Given [dx = A x dt + B dW] with constant [A], [B] over an interval of
    length [tau], computes exactly (to rounding):

    - the state transition matrix [Phi = e^{A tau}], and
    - the accumulated process-noise covariance
      [Qd = ∫_0^tau e^{A s} B Bᵀ e^{Aᵀ s} ds],

    via the matrix exponential of the augmented block matrix
    [[-A, B Bᵀ; 0, Aᵀ] tau].  The covariance propagates across the
    interval as [K(tau) = Phi K(0) Phiᵀ + Qd]. *)

type t = { phi : Mat.t; qd : Mat.t }

val discretize : a:Mat.t -> q:Mat.t -> tau:float -> t
(** [discretize ~a ~q ~tau] with [q = B Bᵀ] (PSD intensity matrix).
    [tau >= 0] required; [tau = 0] gives [phi = I], [qd = 0].

    Numerically robust for stiff phases: when [norm(a) * tau] is large,
    the augmented exponential would overflow through its [e^{-A tau}]
    block, so the implementation switches to the exact stationary form
    [qd = Kinf - phi Kinf phiᵀ] (continuous Lyapunov solve), with a
    chunked-composition fallback for marginally stable [a]. *)

val stiff_threshold : float
(** The [norm(a) * tau] value above which {!discretize} leaves the
    augmented-exponential path (20). *)

val discretize_b : a:Mat.t -> b:Mat.t -> tau:float -> t
(** Convenience wrapper forming [q = b bᵀ] first. *)

val propagate : t -> Mat.t -> Mat.t
(** [propagate d k] is [phi k phiᵀ + qd], symmetrised. *)
