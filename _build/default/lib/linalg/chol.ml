exception Not_psd of int

let factor_exn eps m =
  let n = Mat.rows m in
  let l = Mat.create n n in
  for j = 0 to n - 1 do
    let s = ref (Mat.get m j j) in
    for k = 0 to j - 1 do
      s := !s -. (Mat.get l j k *. Mat.get l j k)
    done;
    let d = !s in
    if d < -.eps then raise (Not_psd j);
    let ljj = sqrt (max d 0.0) in
    Mat.set l j j ljj;
    for i = j + 1 to n - 1 do
      let s = ref (Mat.get m i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      (* semi-definite column: zero it out rather than divide by 0 *)
      Mat.set l i j (if ljj > 0.0 then !s /. ljj else 0.0)
    done
  done;
  l

let factor ?(jitter = 1e-13) m =
  if not (Mat.is_square m) then invalid_arg "Chol.factor: not square";
  let scale = Mat.max_abs m in
  let eps = jitter *. (1.0 +. scale) in
  try factor_exn eps m with Not_psd _ ->
    (* one rescue attempt with explicit diagonal jitter *)
    let n = Mat.rows m in
    let m' = Mat.copy m in
    for i = 0 to n - 1 do
      Mat.update m' i i (fun x -> x +. eps)
    done;
    factor_exn eps m'

let solve l b =
  let n = Mat.rows l in
  if Array.length b <> n then invalid_arg "Chol.solve: dimension mismatch";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let s = ref y.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get l i j *. y.(j))
    done;
    let d = Mat.get l i i in
    if d = 0.0 then invalid_arg "Chol.solve: singular factor";
    y.(i) <- !s /. d
  done;
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get l j i *. y.(j))
    done;
    y.(i) <- !s /. Mat.get l i i
  done;
  y

let is_psd ?(tol = 1e-10) m =
  match factor_exn (tol *. (1.0 +. Mat.max_abs m)) m with
  | _ -> true
  | exception Not_psd _ -> false
