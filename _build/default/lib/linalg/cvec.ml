type t = Cx.t array

let create n = Array.make n Cx.zero

let init = Array.init

let of_real v = Array.map Cx.re v

let real v = Array.map (fun (z : Cx.t) -> z.re) v

let imag v = Array.map (fun (z : Cx.t) -> z.im) v

let copy = Array.copy

let check_len a b name =
  if Array.length a <> Array.length b then
    invalid_arg ("Cvec." ^ name ^ ": length mismatch")

let add a b =
  check_len a b "add";
  Array.init (Array.length a) (fun i -> Cx.( +: ) a.(i) b.(i))

let sub a b =
  check_len a b "sub";
  Array.init (Array.length a) (fun i -> Cx.( -: ) a.(i) b.(i))

let scale s a = Array.map (fun z -> Cx.( *: ) s z) a

let scale_re s a = Array.map (Cx.scale s) a

let dot_conj a b =
  check_len a b "dot_conj";
  let acc = ref Cx.zero in
  for i = 0 to Array.length a - 1 do
    acc := Cx.( +: ) !acc (Cx.( *: ) (Cx.conj a.(i)) b.(i))
  done;
  !acc

let norm2 a =
  let acc = ref 0.0 in
  Array.iter
    (fun (z : Cx.t) -> acc := !acc +. (z.re *. z.re) +. (z.im *. z.im))
    a;
  sqrt !acc

let norm_inf a =
  Array.fold_left (fun m z -> max m (Cx.modulus z)) 0.0 a

let max_abs_diff a b =
  check_len a b "max_abs_diff";
  let m = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    m := max !m (Cx.modulus (Cx.( -: ) a.(i) b.(i)))
  done;
  !m
