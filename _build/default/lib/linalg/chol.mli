(** Cholesky factorisation of symmetric positive (semi-)definite
    matrices, used to sample exact discrete-time process noise in the
    Monte-Carlo engine. *)

exception Not_psd of int
(** Raised with the offending pivot index when a diagonal pivot is
    negative beyond tolerance. *)

val factor : ?jitter:float -> Mat.t -> Mat.t
(** [factor m] returns lower-triangular [l] with [l lᵀ = m + jitter*I]
    (relative [jitter] scaled by [max_abs m], default 1e-13; applied only
    when needed to rescue a semi-definite pivot).  Raises {!Not_psd} when
    [m] is indefinite. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve l b] solves [l lᵀ x = b] given the factor [l]. *)

val is_psd : ?tol:float -> Mat.t -> bool
(** Cheap PSD check via attempted factorisation. *)
