(** Complex scalar helpers on top of [Stdlib.Complex]. *)

type t = Complex.t = { re : float; im : float }

val zero : t

val one : t

val i : t

val re : float -> t
(** Real number as a complex. *)

val make : float -> float -> t

val ( +: ) : t -> t -> t

val ( -: ) : t -> t -> t

val ( *: ) : t -> t -> t

val ( /: ) : t -> t -> t

val neg : t -> t

val conj : t -> t

val scale : float -> t -> t

val modulus : t -> float

val arg : t -> float

val exp : t -> t

val cis : float -> t
(** [cis theta] is [exp (i theta)]. *)

val is_finite : t -> bool

val approx_equal : ?tol:float -> t -> t -> bool
