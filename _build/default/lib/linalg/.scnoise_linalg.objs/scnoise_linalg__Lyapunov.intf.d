lib/linalg/lyapunov.mli: Mat
