lib/linalg/clu.ml: Array Cmat Cvec Cx
