lib/linalg/kron.ml: Array Mat
