lib/linalg/cx.mli: Complex
