lib/linalg/vanloan.mli: Mat
