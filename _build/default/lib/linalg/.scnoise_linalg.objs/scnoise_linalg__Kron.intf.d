lib/linalg/kron.mli: Mat Vec
