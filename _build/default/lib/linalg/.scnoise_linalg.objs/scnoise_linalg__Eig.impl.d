lib/linalg/eig.ml: Array Cx Mat
