lib/linalg/lyapunov.ml: Array Kron Lu Mat
