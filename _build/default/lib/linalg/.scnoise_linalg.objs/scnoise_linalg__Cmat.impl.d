lib/linalg/cmat.ml: Array Cx Mat
