lib/linalg/eig.mli: Cx Mat
