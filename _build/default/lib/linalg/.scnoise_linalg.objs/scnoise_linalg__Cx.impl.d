lib/linalg/cx.ml: Complex
