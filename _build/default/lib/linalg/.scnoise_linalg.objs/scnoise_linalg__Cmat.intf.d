lib/linalg/cmat.mli: Cvec Cx Mat
