lib/linalg/cvec.mli: Cx Vec
