lib/linalg/vanloan.ml: Expm Lu Lyapunov Mat
