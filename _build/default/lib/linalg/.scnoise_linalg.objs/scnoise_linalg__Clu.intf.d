lib/linalg/clu.mli: Cmat Cvec Cx
