(** One-call noise characterisation report for a compiled circuit.

    Gathers in a single structure everything a designer asks of a noise
    tool: stability, steady-state variance, band-integrated noise, the
    spectrum on a chosen grid, and the per-source breakdown — all from
    the mixed-frequency-time engine.  Rendered as aligned text by
    {!to_string} (used by the CLI's [report] subcommand). *)

module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec

type source_share = {
  label : string;
  psd : float;  (** contribution at the reference frequency, V^2/Hz *)
  share : float;  (** fraction of the total at that frequency *)
}

type t = {
  title : string;
  stable : bool;
  floquet_radius : float;
  nstates : int;
  variance_avg : float;  (** time-averaged output variance, V^2 *)
  variance_boundary : float;  (** at the period boundary *)
  rms_uv : float;  (** sqrt of the average variance, in uV *)
  band : (float * float * float) option;
      (** (fmin, fmax, integrated noise V^2) when a band was requested *)
  spectrum : (float * float) array;  (** (f, PSD dB) samples *)
  contributions : source_share list;  (** sorted, largest first *)
  reference_freq : float;
}

val analyze :
  ?samples_per_phase:int -> ?freqs:float array -> ?band:float * float ->
  ?reference_freq:float -> ?title:string -> Pwl.t -> output:Vec.t -> t
(** Defaults: 33 frequencies from 0 to [2 / period], reference frequency
    the 8th grid point, no band integration.  Unstable circuits return a
    report with [stable = false] and noise fields at [nan]. *)

val to_string : t -> string

val print : t -> unit
