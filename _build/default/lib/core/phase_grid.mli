(** Stiffness-aware sample grids within one clock phase.

    Switched-capacitor phases mix fast switch/op-amp time constants
    (1/(R_sw C) and faster) with the slow clock scale.  Covariance and
    cross-spectral-density envelopes therefore have an exponential
    boundary layer right after each switching instant.  This module
    builds per-phase grids that cluster samples geometrically inside the
    boundary layer and spread the rest uniformly, so that trapezoidal
    quadrature over the envelope converges with modest sample counts. *)

val boundary_layer : Scnoise_linalg.Mat.t -> float -> float
(** [boundary_layer a tau] estimates the boundary-layer width: ten times
    the fastest time constant of [a] (bounded from the infinity norm),
    clamped to [tau / 2]; 0 when [a] has no dynamics. *)

val make : a:Scnoise_linalg.Mat.t -> tau:float -> n:int -> float array
(** [make ~a ~tau ~n] returns strictly increasing sample times starting
    at [0.0] and ending at [tau], with at least [n + 1] points.  Raises
    [Invalid_argument] if [n < 2] or [tau <= 0]. *)

val uniform : tau:float -> n:int -> float array
(** Plain uniform grid (used by ablation benches). *)
