module Mat = Scnoise_linalg.Mat
module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec

let source_labels (sys : Pwl.t) =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun (ph : Pwl.phase) ->
      Array.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then begin
            Hashtbl.add seen l ();
            order := l :: !order
          end)
        ph.Pwl.noise_labels)
    sys.Pwl.phases;
  List.rev !order

let restrict (sys : Pwl.t) ~keep =
  let phases =
    Array.map
      (fun (ph : Pwl.phase) ->
        let cols =
          List.filteri
            (fun j _ -> keep ph.Pwl.noise_labels.(j))
            (Array.to_list (Array.init (Mat.cols ph.Pwl.b) (fun j -> j)))
        in
        let b =
          if cols = [] then Mat.create (Mat.rows ph.Pwl.b) 0
          else
            Mat.submatrix ph.Pwl.b
              ~rows:(List.init (Mat.rows ph.Pwl.b) (fun i -> i))
              ~cols
        in
        let labels =
          Array.of_list
            (List.filter keep (Array.to_list ph.Pwl.noise_labels))
        in
        {
          ph with
          Pwl.b;
          q = Mat.mul b (Mat.transpose b);
          noise_labels = labels;
        })
      sys.Pwl.phases
  in
  { sys with Pwl.phases }

let per_source_psd ?solver ?samples_per_phase sys ~output ~f =
  List.map
    (fun label ->
      let restricted = restrict sys ~keep:(fun l -> l = label) in
      let engine = Psd.prepare ?solver ?samples_per_phase restricted ~output in
      (label, Psd.psd engine ~f))
    (source_labels sys)

let check_additivity ?solver ?samples_per_phase sys ~output ~f =
  let total =
    Psd.psd (Psd.prepare ?solver ?samples_per_phase sys ~output) ~f
  in
  let parts = per_source_psd ?solver ?samples_per_phase sys ~output ~f in
  let sum = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 parts in
  if total = 0.0 then abs_float sum else abs_float (sum -. total) /. total
