module Mat = Scnoise_linalg.Mat

let boundary_layer a tau =
  let rate = Mat.norm_inf a in
  if rate <= 0.0 then 0.0 else min (0.5 *. tau) (10.0 /. rate)

let uniform ~tau ~n =
  if n < 2 then invalid_arg "Phase_grid.uniform: n < 2";
  if tau <= 0.0 then invalid_arg "Phase_grid.uniform: tau <= 0";
  Array.init (n + 1) (fun i -> tau *. float_of_int i /. float_of_int n)

let make ~a ~tau ~n =
  if n < 2 then invalid_arg "Phase_grid.make: n < 2";
  if tau <= 0.0 then invalid_arg "Phase_grid.make: tau <= 0";
  let layer = boundary_layer a tau in
  let rate = Mat.norm_inf a in
  let uniform_step = tau /. float_of_int n in
  (* Only stretch when the layer is substantially finer than the uniform
     grid would resolve. *)
  if layer = 0.0 || layer >= 0.45 *. tau || uniform_step <= layer /. 5.0 then
    uniform ~tau ~n
  else begin
    let tau_fast = 1.0 /. rate in
    let rho = 1.5 in
    (* geometric points in (0, layer]: first step ~ tau_fast / 2 *)
    let m1 =
      let target = max 2.0 (layer /. (0.5 *. tau_fast)) in
      let m = ceil (log1p (target *. (rho -. 1.0)) /. log rho) in
      max 3 (min (n / 2) (int_of_float m))
    in
    let geo =
      Array.init m1 (fun j ->
          let j = float_of_int (j + 1) in
          layer *. ((rho ** j) -. 1.0) /. ((rho ** float_of_int m1) -. 1.0))
    in
    let m2 = max 2 (n - m1) in
    let rest =
      Array.init m2 (fun j ->
          layer +. ((tau -. layer) *. float_of_int (j + 1) /. float_of_int m2))
    in
    let pts = Array.concat [ [| 0.0 |]; geo; rest ] in
    (* guard monotonicity against rounding *)
    pts.(Array.length pts - 1) <- tau;
    for i = 1 to Array.length pts - 1 do
      if pts.(i) <= pts.(i - 1) then
        pts.(i) <- pts.(i - 1) +. (epsilon_float *. tau)
    done;
    pts
  end
