(** Per-source decomposition of the output noise spectrum.

    Because the noise sources are mutually uncorrelated, the output PSD
    is the sum of the PSDs obtained with each source acting alone.  The
    cross-spectral formulation computes each contribution by restricting
    the [B] matrices to one source's columns — the "relative contribution
    of various portions of the circuit" feature of the source papers. *)

module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec

val source_labels : Pwl.t -> string list
(** Distinct noise-source labels appearing in any phase, in first-seen
    order. *)

val restrict : Pwl.t -> keep:(string -> bool) -> Pwl.t
(** A copy of the system whose [B]/[Q] retain only the noise columns
    whose label satisfies [keep]. *)

val per_source_psd :
  ?solver:Covariance.solver -> ?samples_per_phase:int -> Pwl.t ->
  output:Vec.t -> f:float -> (string * float) list
(** PSD contribution of every source at frequency [f], in label order. *)

val check_additivity :
  ?solver:Covariance.solver -> ?samples_per_phase:int -> Pwl.t ->
  output:Vec.t -> f:float -> float
(** Relative gap [|sum of contributions - total| / total] — a
    consistency diagnostic (small up to discretisation error). *)
