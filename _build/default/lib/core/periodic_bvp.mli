(** Shared periodic boundary-value solver of the mixed-frequency-time
    method.

    Solves, over one clock period and for an arbitrary periodic forcing,

    [dP/dt = (A(t) - j w I) P + k(t),   P(0) = P(T)]

    by one forced trapezoidal transient (particular solution), a complex
    boundary solve against the frequency-rotated real monodromy
    [(I - e^{-jwT} Phi) P(0) = P_part(T)], and superposition.  The PSD
    engine uses it with [k = K(t) c]; the LPTV transfer-function engine
    with deterministic input columns. *)

module Cvec = Scnoise_linalg.Cvec

type t
(** Prepared solver: grids, phase matrices and transition matrices are
    shared across frequencies and forcings. *)

val of_sampled : Covariance.sampled -> t
(** Build from a sampled periodic covariance (which already carries the
    grid and the transition matrices). *)

val times : t -> float array
(** The grid over one period ([0 .. T]). *)

val n_points : t -> int

val solve : t -> omega:float -> forcing:(int -> Cvec.t) -> Cvec.t array
(** [solve t ~omega ~forcing] returns the periodic steady state
    [P(t_i)] on the grid; [forcing i] is [k(t_i)].  The forcing must be
    periodic ([forcing 0 = forcing (n_points - 1)] in intent; only grid
    samples are consulted).  Raises [Clu.Singular] only if the circuit
    has a Floquet multiplier of unit modulus. *)

val particular : t -> omega:float -> forcing:(int -> Cvec.t) -> Cvec.t array
(** The zero-initial-condition forced response alone (used by the
    brute-force engine's tests and diagnostics). *)

val solve_piecewise :
  t -> omega:float -> forcing:(int -> Cvec.t * Cvec.t) -> Cvec.t array
(** Like {!solve} but for forcings that jump at phase boundaries:
    [forcing i] gives the values at the left and right endpoints of
    interval [i] (for [i] in [0 .. n_points - 2]), both evaluated inside
    that interval's phase.  Used by the LPTV transfer engine whose input
    matrices switch with the clock. *)

val interval_phase : t -> int array
(** Phase index owning each grid interval. *)
