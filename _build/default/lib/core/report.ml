module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec
module Eig = Scnoise_linalg.Eig
module Db = Scnoise_util.Db
module Grid = Scnoise_util.Grid
module Table = Scnoise_util.Table

type source_share = { label : string; psd : float; share : float }

type t = {
  title : string;
  stable : bool;
  floquet_radius : float;
  nstates : int;
  variance_avg : float;
  variance_boundary : float;
  rms_uv : float;
  band : (float * float * float) option;
  spectrum : (float * float) array;
  contributions : source_share list;
  reference_freq : float;
}

let analyze ?(samples_per_phase = 96) ?freqs ?band ?reference_freq
    ?(title = "circuit") sys ~output =
  let radius = Eig.spectral_radius (Pwl.monodromy sys) in
  let stable = radius < 1.0 in
  let freqs =
    match freqs with
    | Some f -> f
    | None -> Grid.linspace 0.0 (2.0 /. sys.Pwl.period) 33
  in
  let reference_freq =
    match reference_freq with
    | Some f -> f
    | None -> freqs.(min 8 (Array.length freqs - 1))
  in
  if not stable then
    {
      title;
      stable;
      floquet_radius = radius;
      nstates = sys.Pwl.nstates;
      variance_avg = nan;
      variance_boundary = nan;
      rms_uv = nan;
      band = None;
      spectrum = [||];
      contributions = [];
      reference_freq;
    }
  else begin
    let cov = Covariance.sample ~samples_per_phase sys in
    let eng = Psd.of_sampled cov ~output in
    let spectrum =
      Array.map (fun f -> (f, Db.of_power (Psd.psd eng ~f))) freqs
    in
    let band =
      Option.map
        (fun (fmin, fmax) ->
          (fmin, fmax, Psd.integrated_noise eng ~fmin ~fmax))
        band
    in
    let parts =
      Contrib.per_source_psd ~samples_per_phase sys ~output ~f:reference_freq
    in
    let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 parts in
    let contributions =
      parts
      |> List.map (fun (label, psd) ->
             { label; psd; share = (if total > 0.0 then psd /. total else 0.0) })
      |> List.sort (fun a b -> compare b.psd a.psd)
    in
    let variance_avg = Covariance.average_variance cov output in
    {
      title;
      stable;
      floquet_radius = radius;
      nstates = sys.Pwl.nstates;
      variance_avg;
      variance_boundary = Covariance.variance_at_boundary cov output;
      rms_uv = 1e6 *. sqrt variance_avg;
      band;
      spectrum;
      contributions;
      reference_freq;
    }
  end

let to_string r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "noise report: %s\n" r.title;
  add "  states: %d, stable: %b (Floquet radius %.6f)\n" r.nstates r.stable
    r.floquet_radius;
  if not r.stable then
    add "  circuit has no periodic steady state; no noise figures\n"
  else begin
    add "  output variance: %.6g V^2 (avg), %.6g V^2 (boundary), %.4g uV rms\n"
      r.variance_avg r.variance_boundary r.rms_uv;
    (match r.band with
    | Some (fmin, fmax, v) ->
        add "  band noise [%.6g, %.6g] Hz: %.6g V^2 (%.4g uV rms)\n" fmin fmax
          v
          (1e6 *. sqrt v)
    | None -> ());
    add "  spectrum:\n";
    let t = Table.create [ "    f_Hz"; "psd_dB" ] in
    Array.iter
      (fun (f, db) ->
        Table.add_float_row t ~precision:5 (Printf.sprintf "    %.6g" f) [ db ])
      r.spectrum;
    Buffer.add_string buf (Table.render t);
    add "\n  contributions at %.6g Hz:\n" r.reference_freq;
    let t2 = Table.create [ "    source"; "psd_V2_per_Hz"; "share_%" ] in
    List.iter
      (fun s ->
        Table.add_float_row t2 ~precision:4 ("    " ^ s.label)
          [ s.psd; 100.0 *. s.share ])
      r.contributions;
    Buffer.add_string buf (Table.render t2);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let print r = print_string (to_string r)
