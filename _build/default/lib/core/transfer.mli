(** Linear periodically time-varying (LPTV) transfer functions of a
    compiled switched circuit, by the same periodic-shooting machinery as
    the noise engine.

    For a complex exponential input [u(t) = e^{jwt}] on one input (or an
    arbitrary per-phase forcing column), the steady-state output is

    [y(t) = e^{jwt} sum_k H_k(w) e^{j k wc t}]

    — a frequency comb at offsets of the clock rate [wc].  [H_0] is the
    average (baseband) transfer function; the [H_k] quantify the
    frequency translation (aliasing) paths.  Each evaluation costs one
    periodic boundary-value solve. *)

module Vec = Scnoise_linalg.Vec
module Cx = Scnoise_linalg.Cx
module Pwl = Scnoise_circuit.Pwl

type engine

val prepare :
  ?solver:Covariance.solver -> ?samples_per_phase:int ->
  ?grid:Covariance.grid_kind -> Pwl.t -> output:Vec.t -> engine
(** The preparation shares everything frequency-independent; [output]
    extracts the observed combination of states. *)

val of_sampled : Covariance.sampled -> output:Vec.t -> engine

val n_inputs : engine -> int
(** Number of deterministic inputs of the circuit (voltage sources then
    current sources, in netlist order). *)

val response :
  engine -> forcing:(int -> Scnoise_linalg.Cvec.t) -> f:float ->
  k_range:int -> Cx.t array
(** [response e ~forcing ~f ~k_range] drives the state equation with
    [forcing p] (the per-phase forcing column, e.g. a column of [E_p] or
    [B_p]) modulated by [e^{j 2 pi f t}], and returns the output
    harmonics [H_(-k_range) .. H_(k_range)] (array index [k + k_range]). *)

val harmonics : engine -> input:int -> f:float -> k_range:int -> Cx.t array
(** {!response} with the forcing taken as column [input] of each phase's
    input matrix, [E_p + jw Edot_p] (the derivative term accounts for
    capacitive coupling from the source). *)

val gain : engine -> input:int -> f:float -> Cx.t
(** The baseband transfer function [H_0(f)]. *)

val gain_db : engine -> input:int -> f:float -> float
(** [20 log10 |H_0(f)|]. *)
