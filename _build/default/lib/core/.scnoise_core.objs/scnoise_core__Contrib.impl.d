lib/core/contrib.ml: Array Hashtbl List Psd Scnoise_circuit Scnoise_linalg
