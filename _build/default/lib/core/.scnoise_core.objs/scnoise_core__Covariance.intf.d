lib/core/covariance.mli: Scnoise_circuit Scnoise_linalg
