lib/core/transfer.ml: Array Covariance Float Periodic_bvp Scnoise_circuit Scnoise_linalg Scnoise_util
