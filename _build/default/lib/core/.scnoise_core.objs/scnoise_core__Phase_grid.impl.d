lib/core/phase_grid.ml: Array Scnoise_linalg
