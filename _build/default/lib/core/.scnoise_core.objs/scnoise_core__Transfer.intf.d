lib/core/transfer.mli: Covariance Scnoise_circuit Scnoise_linalg
