lib/core/report.ml: Array Buffer Contrib Covariance List Option Printf Psd Scnoise_circuit Scnoise_linalg Scnoise_util
