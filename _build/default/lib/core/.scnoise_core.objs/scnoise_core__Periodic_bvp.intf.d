lib/core/periodic_bvp.mli: Covariance Scnoise_linalg
