lib/core/covariance.ml: Array List Phase_grid Scnoise_circuit Scnoise_linalg Scnoise_util
