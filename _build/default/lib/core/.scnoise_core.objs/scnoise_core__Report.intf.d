lib/core/report.mli: Scnoise_circuit Scnoise_linalg
