lib/core/psd.mli: Covariance Scnoise_circuit Scnoise_linalg
