lib/core/phase_grid.mli: Scnoise_linalg
