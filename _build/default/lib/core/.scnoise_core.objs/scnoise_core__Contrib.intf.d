lib/core/contrib.mli: Covariance Scnoise_circuit Scnoise_linalg
