lib/core/periodic_bvp.ml: Array Covariance Hashtbl Scnoise_circuit Scnoise_linalg Scnoise_ode
