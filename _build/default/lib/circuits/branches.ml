module Netlist = Scnoise_circuit.Netlist

let toggle_to_ground nl ~label ~src ~sum ~c ~r ?(p1 = 0) ?(p2 = 1) () =
  let n = Netlist.node nl (label ^ "_n") in
  Netlist.switch ~name:(label ^ "a") ~closed_in:[ p1 ] nl n src r;
  Netlist.switch ~name:(label ^ "b") ~closed_in:[ p2 ] nl n sum r;
  Netlist.capacitor ~name:(label ^ "C") nl n Netlist.ground c

let plates nl ~label ~cp =
  let na = Netlist.node nl (label ^ "_a") in
  let nb = Netlist.node nl (label ^ "_b") in
  Netlist.capacitor ~name:(label ^ "Cpa") nl na Netlist.ground cp;
  Netlist.capacitor ~name:(label ^ "Cpb") nl nb Netlist.ground cp;
  (na, nb)

let parasitic_insensitive_noninverting nl ~label ~src ~sum ~c ~cp ~r ?(p1 = 0)
    ?(p2 = 1) () =
  let na, nb = plates nl ~label ~cp in
  Netlist.switch ~name:(label ^ "a1") ~closed_in:[ p1 ] nl na src r;
  Netlist.switch ~name:(label ^ "a2") ~closed_in:[ p2 ] nl na Netlist.ground r;
  Netlist.switch ~name:(label ^ "b1") ~closed_in:[ p1 ] nl nb Netlist.ground r;
  Netlist.switch ~name:(label ^ "b2") ~closed_in:[ p2 ] nl nb sum r;
  Netlist.capacitor ~name:(label ^ "C") nl na nb c

let parasitic_insensitive_inverting nl ~label ~src ~sum ~c ~cp ~r ?(p1 = 0)
    ?(p2 = 1) () =
  let na, nb = plates nl ~label ~cp in
  Netlist.switch ~name:(label ^ "a1") ~closed_in:[ p1 ] nl na src r;
  Netlist.switch ~name:(label ^ "a2") ~closed_in:[ p2 ] nl na sum r;
  Netlist.switch ~name:(label ^ "b1") ~closed_in:[ p1 ] nl nb Netlist.ground r;
  Netlist.switch ~name:(label ^ "b2") ~closed_in:[ p2 ] nl nb Netlist.ground r;
  Netlist.capacitor ~name:(label ^ "C") nl na nb c
