lib/circuits/sc_ladder.ml: Printf Scnoise_circuit Scnoise_linalg
