lib/circuits/branches.mli: Scnoise_circuit
