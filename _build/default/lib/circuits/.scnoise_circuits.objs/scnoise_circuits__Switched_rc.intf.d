lib/circuits/switched_rc.mli: Scnoise_circuit Scnoise_dtime Scnoise_linalg
