lib/circuits/sc_ladder.mli: Scnoise_circuit Scnoise_linalg
