lib/circuits/sc_integrator.mli: Scnoise_circuit Scnoise_dtime Scnoise_linalg
