lib/circuits/branches.ml: Scnoise_circuit
