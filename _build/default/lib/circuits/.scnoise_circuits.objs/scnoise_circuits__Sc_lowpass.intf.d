lib/circuits/sc_lowpass.mli: Scnoise_circuit Scnoise_linalg
