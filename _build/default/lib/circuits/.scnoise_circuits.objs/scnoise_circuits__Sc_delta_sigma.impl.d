lib/circuits/sc_delta_sigma.ml: Branches Float Scnoise_circuit Scnoise_linalg
