lib/circuits/sc_integrator.ml: Float Scnoise_circuit Scnoise_dtime Scnoise_linalg Scnoise_util
