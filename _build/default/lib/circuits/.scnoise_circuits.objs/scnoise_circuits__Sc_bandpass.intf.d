lib/circuits/sc_bandpass.mli: Scnoise_circuit Scnoise_linalg
