lib/circuits/sc_bandpass.ml: Branches Float Scnoise_circuit Scnoise_linalg
