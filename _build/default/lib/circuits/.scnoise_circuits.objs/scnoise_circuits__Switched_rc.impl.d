lib/circuits/switched_rc.ml: Scnoise_circuit Scnoise_dtime Scnoise_linalg Scnoise_util
