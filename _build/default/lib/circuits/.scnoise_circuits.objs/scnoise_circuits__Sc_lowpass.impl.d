lib/circuits/sc_lowpass.ml: Float Scnoise_circuit Scnoise_linalg
