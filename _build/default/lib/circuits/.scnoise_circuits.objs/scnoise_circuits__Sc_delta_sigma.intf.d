lib/circuits/sc_delta_sigma.mli: Scnoise_circuit Scnoise_linalg
