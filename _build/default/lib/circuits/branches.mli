(** Reusable switched-capacitor branch builders.

    The evaluation circuits compose three standard two-phase branches;
    centralising them keeps the topologies declarative and consistent.
    Phase conventions: phase index [p1] samples, [p2] delivers. *)

module Netlist = Scnoise_circuit.Netlist

val toggle_to_ground :
  Netlist.t -> label:string -> src:Netlist.node -> sum:Netlist.node ->
  c:float -> r:float -> ?p1:int -> ?p2:int -> unit -> unit
(** Inverting SC-resistor branch: a grounded capacitor whose hot plate
    toggles between [src] (sampling, phase [p1], default 0) and [sum]
    (delivery, phase [p2], default 1).  Used as input, damping and
    feedback branch; delivering into a virtual ground [sum] transfers
    [-C v_src] per cycle. *)

val parasitic_insensitive_noninverting :
  Netlist.t -> label:string -> src:Netlist.node -> sum:Netlist.node ->
  c:float -> cp:float -> r:float -> ?p1:int -> ?p2:int -> unit -> unit
(** Floating capacitor sampled across [(src, ground)] in phase [p1] and
    delivered across [(ground, sum)] in phase [p2]; transfers
    [+C v_src] per cycle into a virtual-ground [sum].  [cp] anchors both
    plates with explicit parasitics (the compiler rejects truly floating
    capacitor networks). *)

val parasitic_insensitive_inverting :
  Netlist.t -> label:string -> src:Netlist.node -> sum:Netlist.node ->
  c:float -> cp:float -> r:float -> ?p1:int -> ?p2:int -> unit -> unit
(** Same structure with the delivery plates exchanged, transferring
    [-C v_src] per cycle. *)
