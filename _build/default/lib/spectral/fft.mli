(** Radix-2 fast Fourier transform.

    Power-of-two lengths only; used by the Welch estimator to turn
    Monte-Carlo sample paths into full spectra. *)

module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec

val is_pow2 : int -> bool

val next_pow2 : int -> int
(** Smallest power of two >= the argument (>= 1). *)

val transform : Cvec.t -> Cvec.t
(** Forward DFT, [X_k = sum_n x_n e^{-2 pi i k n / N}].  Raises
    [Invalid_argument] unless the length is a power of two. *)

val inverse : Cvec.t -> Cvec.t
(** Inverse DFT with the [1/N] factor, so [inverse (transform x) = x]. *)

val real_transform : float array -> Cvec.t
(** Forward DFT of a real signal (convenience wrapper). *)

val frequencies : n:int -> dt:float -> float array
(** The frequency of each DFT bin for a length-[n] record sampled every
    [dt] seconds: [0, 1/(n dt), ..., (n-1)/(n dt)] — bins above [n/2]
    alias to negative frequencies. *)
