(** Welch power-spectral-density estimation over uniformly sampled
    records. *)

type window = Rect | Hann

val window_values : window -> int -> float array

val periodogram :
  ?window:window -> dt:float -> float array -> float array * float array
(** [(freqs, psd)] of a single segment whose length must be a power of
    two; [psd] is the double-sided density (V^2/Hz), normalised so a
    white signal of variance [v] gives [v * dt] in every bin.  Only the
    non-negative-frequency half (n/2 + 1 bins) is returned. *)

val estimate :
  ?window:window -> ?overlap:float -> dt:float -> segment:int ->
  float array -> float array * float array
(** Welch average over segments of power-of-two length [segment] with
    fractional [overlap] (default 0.5) of a long record; raises
    [Invalid_argument] if the record is shorter than one segment. *)
