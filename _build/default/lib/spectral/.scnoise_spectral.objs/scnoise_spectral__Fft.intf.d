lib/spectral/fft.mli: Scnoise_linalg
