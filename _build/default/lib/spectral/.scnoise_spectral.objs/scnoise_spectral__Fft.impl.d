lib/spectral/fft.ml: Array Float Scnoise_linalg
