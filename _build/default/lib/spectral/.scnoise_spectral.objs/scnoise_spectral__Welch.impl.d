lib/spectral/welch.ml: Array Fft Float Scnoise_linalg
