lib/spectral/welch.mli:
