(** Ideal ("full and fast" charge transfer) discrete-time noise analysis
    of switched-capacitor circuits — the classical z-domain baseline of
    the Goette-Gobet / Toth lineage the source papers compare against.

    Under instantaneous charge transfer a switched-capacitor circuit
    becomes a linear discrete-time system clocked at the switching rate:

    [x(n+1) = Ad x(n) + Bd w(n)],   [w ~ N(0, I)]

    whose state collects the per-cycle capacitor voltages and whose noise
    inputs are the sampled kT/C charges.  This module computes its
    stationary variance (discrete Lyapunov equation), its sampled-data
    spectrum, and the continuous-time spectrum of the (partially) held
    output waveform.  The exact engines of this library quantify where
    the approximation breaks (finite switch resistance, finite op-amp
    bandwidth) — see the full-and-fast validity bench. *)

module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec

type t = {
  ad : Mat.t;  (** per-cycle state map (n x n) *)
  bd : Mat.t;  (** per-cycle noise injection (n x m), unit-variance inputs *)
  c : Vec.t;  (** output row *)
  period : float;  (** clock period, s *)
}

val make : ad:Mat.t -> bd:Mat.t -> c:Vec.t -> period:float -> t
(** Validates dimensions and stability requirements are NOT checked here
    (marginal systems are permitted for transfer-function work); the
    variance/spectrum functions raise {!Scnoise_linalg.Lyapunov.Not_stable}
    or [Lu.Singular] when the system has no stationary state. *)

val state_covariance : t -> Mat.t
(** Stationary covariance of the sampled state. *)

val variance : t -> float
(** Stationary output-sample variance [cᵀ K c]. *)

val spectrum_sampled : t -> f:float -> float
(** Power spectral density of the output sample *sequence*, expressed as
    a double-sided continuous density (V^2/Hz):
    [T · cᵀ (e^{jθ}I - Ad)^{-1} Bd Bdᵀ (e^{jθ}I - Ad)^{-H} c] with
    [θ = 2 pi f T].  Periodic in [f] with period [1/T]; integrating over
    one full alias zone recovers {!variance}. *)

val spectrum_held : ?hold_fraction:float -> t -> f:float -> float
(** Continuous-time PSD of the output held for [hold_fraction] of each
    period (default 1, zero-order hold):
    [ (W^2/T) sinc^2(pi f W) · S_x(e^{j 2 pi f T}) / T ] with
    [W = hold_fraction T] — the familiar sinc-shaped sampled-data
    spectrum. *)

val dc_gain_noise : t -> float
(** [cᵀ (I - Ad)^{-1} Bd] row norm squared — the zero-frequency density
    of the sampled spectrum divided by [T]; diagnostic. *)
