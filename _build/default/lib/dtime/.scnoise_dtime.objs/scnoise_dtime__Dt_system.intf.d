lib/dtime/dt_system.mli: Scnoise_linalg
