lib/dtime/dt_system.ml: Array Float Scnoise_linalg
