let linspace a b n =
  if n < 1 then invalid_arg "Grid.linspace: n < 1";
  if n = 1 then [| a |]
  else begin
    let h = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i -> a +. (h *. float_of_int i))
  end

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Grid.logspace: bounds must be > 0";
  let la = log10 a and lb = log10 b in
  Array.map (fun x -> 10.0 ** x) (linspace la lb n)

let arange start stop step =
  if step = 0.0 then invalid_arg "Grid.arange: step = 0";
  let n =
    int_of_float (ceil (((stop -. start) /. step) -. 0.5 *. epsilon_float))
  in
  let n = max n 0 in
  Array.init n (fun i -> start +. (step *. float_of_int i))

let trapezoid xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Grid.trapezoid: length mismatch";
  if n < 2 then invalid_arg "Grid.trapezoid: need >= 2 samples";
  let acc = ref 0.0 in
  for i = 0 to n - 2 do
    acc := !acc +. (0.5 *. (ys.(i) +. ys.(i + 1)) *. (xs.(i + 1) -. xs.(i)))
  done;
  !acc

let trapezoid_uniform h ys =
  let n = Array.length ys in
  if n < 2 then invalid_arg "Grid.trapezoid_uniform: need >= 2 samples";
  let acc = ref (0.5 *. (ys.(0) +. ys.(n - 1))) in
  for i = 1 to n - 2 do
    acc := !acc +. ys.(i)
  done;
  !acc *. h

let simpson_uniform h ys =
  let n = Array.length ys in
  if n < 2 then invalid_arg "Grid.simpson_uniform: need >= 2 samples";
  if n = 2 then 0.5 *. h *. (ys.(0) +. ys.(1))
  else begin
    (* Simpson needs an odd number of samples; handle a trailing interval
       with one trapezoid panel when the count is even. *)
    let m = if n mod 2 = 1 then n else n - 1 in
    let acc = ref (ys.(0) +. ys.(m - 1)) in
    let i = ref 1 in
    while !i < m - 1 do
      let w = if !i mod 2 = 1 then 4.0 else 2.0 in
      acc := !acc +. (w *. ys.(!i));
      incr i
    done;
    let simpson = h /. 3.0 *. !acc in
    if n mod 2 = 1 then simpson
    else simpson +. (0.5 *. h *. (ys.(n - 2) +. ys.(n - 1)))
  end
