(** Minimal terminal plotting for spectra and traces.

    Renders an (x, y) series as a fixed-size character grid with axis
    annotations — enough to eyeball a noise spectrum from the CLI without
    leaving the terminal. *)

val render :
  ?width:int -> ?height:int -> ?x_log:bool -> ?x_label:string ->
  ?y_label:string -> float array -> float array -> string
(** [render xs ys] draws the series with [*] markers on a
    [width x height] grid (defaults 64 x 16).  [x_log] (default false)
    spaces the x axis logarithmically (requires positive x values; the
    first non-positive points are dropped).  Raises [Invalid_argument]
    on length mismatch or fewer than 2 usable points.  Non-finite y
    values are skipped. *)

val print :
  ?width:int -> ?height:int -> ?x_log:bool -> ?x_label:string ->
  ?y_label:string -> float array -> float array -> unit
