(** Frequency and time grids for sweeps and quadrature. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] equally spaced points from [a] to [b]
    inclusive.  [n >= 2] required (and [n = 1] returns [[|a|]]). *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] log-spaced points from [a] to [b] inclusive;
    both bounds must be positive. *)

val arange : float -> float -> float -> float array
(** [arange start stop step] is points [start, start+step, ...] strictly
    below [stop] (within a half-step tolerance of inclusion). *)

val trapezoid : float array -> float array -> float
(** [trapezoid xs ys] integrates samples [ys] over abscissae [xs] with the
    composite trapezoid rule.  Arrays must have equal length >= 2. *)

val trapezoid_uniform : float -> float array -> float
(** [trapezoid_uniform h ys] integrates uniformly spaced samples with
    spacing [h]. *)

val simpson_uniform : float -> float array -> float
(** [simpson_uniform h ys] is the composite Simpson rule over uniformly
    spaced samples; falls back to trapezoid on the final interval when the
    sample count is even. *)
