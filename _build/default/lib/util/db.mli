(** Decibel conversions.

    PSD values in this library are double-sided densities in V^2/Hz (or
    A^2/Hz); figures in the source papers plot them as [10 log10 S]. *)

val of_power : float -> float
(** [of_power p] is [10 log10 p].  [p <= 0] maps to [neg_infinity]. *)

val to_power : float -> float
(** [to_power d] is [10^(d/10)]. *)

val of_amplitude : float -> float
(** [of_amplitude a] is [20 log10 (abs a)]. *)

val to_amplitude : float -> float
(** [to_amplitude d] is [10^(d/20)]. *)

val delta : float -> float -> float
(** [delta p1 p2] is the difference [of_power p1 -. of_power p2] in dB,
    with both arguments treated as powers. *)
