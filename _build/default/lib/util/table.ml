type t = {
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t cells =
  let nh = List.length t.headers and nc = List.length cells in
  if nc > nh then invalid_arg "Table.add_row: more cells than headers";
  let padded =
    if nc = nh then cells else cells @ List.init (nh - nc) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let float_cell precision x = Printf.sprintf "%.*g" precision x

let add_float_row t ?(precision = 6) label xs =
  add_row t (label :: List.map (float_cell precision) xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width j =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row j with
        | None -> acc
        | Some cell -> max acc (String.length cell))
      0 all
  in
  let widths = List.init ncols width in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row = String.concat "  " (List.map2 pad widths row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.headers :: sep :: List.map line rows)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.headers :: List.rev t.rows)) ^ "\n"

let save_csv t path =
  let oc = open_out path in
  (try output_string oc (to_csv t)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let print t =
  print_string (render t);
  print_newline ()

let series ?(x_label = "x") ?y_labels xs yss =
  let n = Array.length xs in
  List.iter
    (fun ys ->
      if Array.length ys <> n then
        invalid_arg "Table.series: length mismatch")
    yss;
  let labels =
    match y_labels with
    | Some ls ->
        if List.length ls <> List.length yss then
          invalid_arg "Table.series: y_labels length mismatch";
        ls
    | None -> List.mapi (fun i _ -> Printf.sprintf "y%d" (i + 1)) yss
  in
  let t = create (x_label :: labels) in
  for i = 0 to n - 1 do
    add_row t
      (float_cell 6 xs.(i) :: List.map (fun ys -> float_cell 6 ys.(i)) yss)
  done;
  render t

let print_series ?x_label ?y_labels xs yss =
  print_string (series ?x_label ?y_labels xs yss);
  print_newline ()
