let of_power p = if p <= 0.0 then neg_infinity else 10.0 *. log10 p

let to_power d = 10.0 ** (d /. 10.0)

let of_amplitude a =
  let a = abs_float a in
  if a = 0.0 then neg_infinity else 20.0 *. log10 a

let to_amplitude d = 10.0 ** (d /. 20.0)

let delta p1 p2 = of_power p1 -. of_power p2
