lib/util/const.mli:
