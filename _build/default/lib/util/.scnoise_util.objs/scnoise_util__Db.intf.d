lib/util/db.mli:
