lib/util/const.ml:
