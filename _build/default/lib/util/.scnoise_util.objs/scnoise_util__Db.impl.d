lib/util/db.ml:
