lib/util/grid.mli:
