lib/util/table.mli:
