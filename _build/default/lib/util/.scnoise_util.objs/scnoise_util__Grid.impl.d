lib/util/grid.ml: Array
