(** Plain-text table and data-series rendering for benches, the CLI and the
    examples.  Output is aligned, markdown-ish, and stable enough to diff. *)

type t
(** A table under construction. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val add_float_row : t -> ?precision:int -> string -> float list -> unit
(** [add_float_row t label xs] appends a row whose first cell is [label]
    and remaining cells are [xs] rendered with [%.*g] (default precision
    6). *)

val render : t -> string
(** [render t] is the formatted table as a string, with a header
    separator. *)

val to_csv : t -> string
(** Comma-separated rendering (cells containing commas or quotes are
    quoted). *)

val save_csv : t -> string -> unit
(** [save_csv t path] writes {!to_csv} to a file. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)

val series :
  ?x_label:string -> ?y_labels:string list ->
  float array -> float array list -> string
(** [series xs yss] renders one or more aligned (x, y1, y2, ...) data
    series as a table, for regenerating figures as printable data.  All
    arrays must share [xs]'s length. *)

val print_series :
  ?x_label:string -> ?y_labels:string list ->
  float array -> float array list -> unit
