let boltzmann = 1.380649e-23

let electron_charge = 1.602176634e-19

let room_temperature = 300.0

let kt ?(temperature = room_temperature) () = boltzmann *. temperature

let thermal_current_psd ?(temperature = room_temperature) r =
  if r <= 0.0 then invalid_arg "Const.thermal_current_psd: r <= 0";
  2.0 *. boltzmann *. temperature /. r

let thermal_voltage ?(temperature = room_temperature) () =
  boltzmann *. temperature /. electron_charge
