let render ?(width = 64) ?(height = 16) ?(x_log = false) ?(x_label = "x")
    ?(y_label = "y") xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Ascii_plot.render: length mismatch";
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: too small";
  (* usable points: finite y, positive x when logarithmic *)
  let pts =
    Array.to_list (Array.mapi (fun i x -> (x, ys.(i))) xs)
    |> List.filter (fun (x, y) ->
           Float.is_finite y && ((not x_log) || x > 0.0))
  in
  if List.length pts < 2 then
    invalid_arg "Ascii_plot.render: fewer than 2 usable points";
  let fx x = if x_log then log10 x else x in
  let xmin = List.fold_left (fun a (x, _) -> min a (fx x)) infinity pts in
  let xmax = List.fold_left (fun a (x, _) -> max a (fx x)) neg_infinity pts in
  let ymin = List.fold_left (fun a (_, y) -> min a y) infinity pts in
  let ymax = List.fold_left (fun a (_, y) -> max a y) neg_infinity pts in
  let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
  let xspan = if xmax -. xmin <= 0.0 then 1.0 else xmax -. xmin in
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (x, y) ->
      let col =
        int_of_float
          (Float.round ((fx x -. xmin) /. xspan *. float_of_int (width - 1)))
      in
      let row =
        int_of_float
          (Float.round ((ymax -. y) /. yspan *. float_of_int (height - 1)))
      in
      let col = max 0 (min (width - 1) col) in
      let row = max 0 (min (height - 1) row) in
      grid.(row).(col) <- '*')
    pts;
  let buf = Buffer.create ((height + 3) * (width + 12)) in
  Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
  Array.iteri
    (fun r line ->
      let y_here =
        ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan)
      in
      let tag =
        if r = 0 || r = height - 1 || r = (height - 1) / 2 then
          Printf.sprintf "%9.3g |" y_here
        else String.make 9 ' ' ^ " |"
      in
      Buffer.add_string buf tag;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 10 ' ' ^ "+" ^ String.make width '-');
  Buffer.add_char buf '\n';
  let left = if x_log then 10.0 ** xmin else xmin in
  let right = if x_log then 10.0 ** xmax else xmax in
  Buffer.add_string buf
    (Printf.sprintf "%s%.4g%s%.4g  (%s%s)\n" (String.make 11 ' ') left
       (String.make (max 1 (width - 16)) ' ')
       right x_label
       (if x_log then ", log" else ""));
  Buffer.contents buf

let print ?width ?height ?x_log ?x_label ?y_label xs ys =
  print_string (render ?width ?height ?x_log ?x_label ?y_label xs ys)
