(** Physical constants used throughout the noise analyses.

    All values are SI.  Thermal noise intensities follow the convention of
    the source papers: a resistor [r] at temperature [t] carries a
    double-sided current-noise power spectral density of [2 k t / r]
    (A^2/Hz). *)

val boltzmann : float
(** Boltzmann constant, J/K. *)

val electron_charge : float
(** Elementary charge, C. *)

val room_temperature : float
(** Default analysis temperature, K (300 K, as in the source papers). *)

val kt : ?temperature:float -> unit -> float
(** [kt ()] is [boltzmann *. room_temperature]; the optional argument
    overrides the temperature. *)

val thermal_current_psd : ?temperature:float -> float -> float
(** [thermal_current_psd r] is the double-sided thermal current-noise PSD
    [2kT/r] of a resistor of [r] ohms.  Raises [Invalid_argument] if
    [r <= 0]. *)

val thermal_voltage : ?temperature:float -> unit -> float
(** [thermal_voltage ()] is [kT/q], the thermal voltage (~25.85 mV at
    300 K). *)
