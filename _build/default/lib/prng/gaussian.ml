type t = { gen : Xoshiro.t; mutable cached : float option }

let create seed = { gen = Xoshiro.create seed; cached = None }

let of_xoshiro gen = { gen; cached = None }

(* Marsaglia polar method: rejection from the unit disc, two variates per
   accepted pair. *)
let rec polar_pair gen =
  let u = (2.0 *. Xoshiro.float01 gen) -. 1.0 in
  let v = (2.0 *. Xoshiro.float01 gen) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then polar_pair gen
  else begin
    let m = sqrt (-2.0 *. log s /. s) in
    (u *. m, v *. m)
  end

let sample t =
  match t.cached with
  | Some x ->
      t.cached <- None;
      x
  | None ->
      let x, y = polar_pair t.gen in
      t.cached <- Some y;
      x

let sample_scaled t ~mean ~sigma = mean +. (sigma *. sample t)

let fill t arr =
  for i = 0 to Array.length arr - 1 do
    arr.(i) <- sample t
  done
