(** Gaussian variates on top of {!Xoshiro}. *)

type t
(** A Gaussian sampler owning its generator state. *)

val create : int64 -> t
(** [create seed] builds a sampler with a fresh xoshiro256++ stream. *)

val of_xoshiro : Xoshiro.t -> t
(** Wrap an existing generator (shared state). *)

val sample : t -> float
(** Standard normal variate (mean 0, variance 1), by Marsaglia's polar
    method with caching of the second variate. *)

val sample_scaled : t -> mean:float -> sigma:float -> float
(** [sample_scaled t ~mean ~sigma] is [mean +. sigma *. sample t]. *)

val fill : t -> float array -> unit
(** Fill an array with independent standard normal variates. *)
