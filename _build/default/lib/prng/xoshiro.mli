(** xoshiro256++ pseudo-random generator.

    A small, fast, reproducible PRNG used by the Monte-Carlo noise engine.
    Streams are deterministic functions of the seed, independent of the
    OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] initialises a generator from a 64-bit seed via
    splitmix64 expansion.  Any seed (including 0) is valid. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val float01 : t -> float
(** Uniform float in [[0, 1)] with 53 bits of precision. *)

val jump : t -> unit
(** Advance the state by 2^128 steps; used to derive non-overlapping
    parallel streams from a common seed. *)
