lib/prng/gaussian.mli: Xoshiro
