lib/prng/gaussian.ml: Array Xoshiro
