lib/prng/xoshiro.mli:
