type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is the recommended seeder for the xoshiro family. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let float01 t =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jump_word ->
      for b = 0 to 63 do
        if Int64.logand jump_word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
