module Vec = Scnoise_linalg.Vec

type stats = { steps_accepted : int; steps_rejected : int }

(* Fehlberg coefficients *)
let c2 = 0.25
and c3 = 3.0 /. 8.0
and c4 = 12.0 /. 13.0
and c5 = 1.0
and c6 = 0.5

let a21 = 0.25

let a31 = 3.0 /. 32.0
and a32 = 9.0 /. 32.0

let a41 = 1932.0 /. 2197.0
and a42 = -7200.0 /. 2197.0
and a43 = 7296.0 /. 2197.0

let a51 = 439.0 /. 216.0
and a52 = -8.0
and a53 = 3680.0 /. 513.0
and a54 = -845.0 /. 4104.0

let a61 = -8.0 /. 27.0
and a62 = 2.0
and a63 = -3544.0 /. 2565.0
and a64 = 1859.0 /. 4104.0
and a65 = -11.0 /. 40.0

(* 5th order solution weights *)
let b1 = 16.0 /. 135.0
and b3 = 6656.0 /. 12825.0
and b4 = 28561.0 /. 56430.0
and b5 = -9.0 /. 50.0
and b6 = 2.0 /. 55.0

(* 4th order (embedded) weights *)
let d1 = 25.0 /. 216.0
and d3 = 1408.0 /. 2565.0
and d4 = 2197.0 /. 4104.0
and d5 = -0.2

let try_step f t h x =
  let n = Array.length x in
  let stage coeffs ks =
    let y = Vec.copy x in
    List.iter2 (fun c k -> Vec.axpy (c *. h) k y) coeffs ks;
    y
  in
  let k1 = f t x in
  let k2 = f (t +. (c2 *. h)) (stage [ a21 ] [ k1 ]) in
  let k3 = f (t +. (c3 *. h)) (stage [ a31; a32 ] [ k1; k2 ]) in
  let k4 = f (t +. (c4 *. h)) (stage [ a41; a42; a43 ] [ k1; k2; k3 ]) in
  let k5 =
    f (t +. (c5 *. h)) (stage [ a51; a52; a53; a54 ] [ k1; k2; k3; k4 ])
  in
  let k6 =
    f
      (t +. (c6 *. h))
      (stage [ a61; a62; a63; a64; a65 ] [ k1; k2; k3; k4; k5 ])
  in
  let x5 = Vec.copy x in
  Vec.axpy (b1 *. h) k1 x5;
  Vec.axpy (b3 *. h) k3 x5;
  Vec.axpy (b4 *. h) k4 x5;
  Vec.axpy (b5 *. h) k5 x5;
  Vec.axpy (b6 *. h) k6 x5;
  let x4 = Vec.copy x in
  Vec.axpy (d1 *. h) k1 x4;
  Vec.axpy (d3 *. h) k3 x4;
  Vec.axpy (d4 *. h) k4 x4;
  Vec.axpy (d5 *. h) k5 x4;
  let err = ref 0.0 in
  for i = 0 to n - 1 do
    err := max !err (abs_float (x5.(i) -. x4.(i)))
  done;
  (x5, !err)

let integrate ?(rtol = 1e-8) ?(atol = 1e-12) ?h0 ?h_min ?(max_steps = 1_000_000)
    f ~t0 ~t1 x0 =
  if t1 < t0 then invalid_arg "Rkf45.integrate: t1 < t0";
  if t1 = t0 then (x0, { steps_accepted = 0; steps_rejected = 0 })
  else begin
    let span = t1 -. t0 in
    let h0 = match h0 with Some h -> h | None -> span /. 100.0 in
    let h_min = match h_min with Some h -> h | None -> span *. 1e-12 in
    let t = ref t0 and x = ref x0 and h = ref (min h0 span) in
    let acc = ref 0 and rej = ref 0 in
    while !t < t1 do
      if !acc + !rej > max_steps then failwith "Rkf45: max_steps exceeded";
      let hstep = min !h (t1 -. !t) in
      let x_new, err = try_step f !t hstep !x in
      let tol = atol +. (rtol *. Vec.norm_inf !x) in
      if err <= tol || hstep <= h_min then begin
        (if err > tol then
           (* forced acceptance at the floor: record it as accepted but
              do not let the controller shrink further *)
           ());
        t := !t +. hstep;
        x := x_new;
        incr acc;
        let grow =
          if err = 0.0 then 4.0
          else min 4.0 (0.9 *. ((tol /. err) ** 0.2))
        in
        h := max h_min (hstep *. max 0.1 grow)
      end
      else begin
        incr rej;
        let shrink = max 0.1 (0.9 *. ((tol /. err) ** 0.25)) in
        h := max h_min (hstep *. shrink)
      end
    done;
    (!x, { steps_accepted = !acc; steps_rejected = !rej })
  end

let sample ?rtol ?atol f ~t0 ~t1 ~n x0 =
  if n < 1 then invalid_arg "Rkf45.sample: n < 1";
  let out = Array.make (n + 1) (t0, x0) in
  let x = ref x0 in
  let h = (t1 -. t0) /. float_of_int n in
  for i = 1 to n do
    let a = t0 +. (h *. float_of_int (i - 1)) in
    let b = t0 +. (h *. float_of_int i) in
    let x', _ = integrate ?rtol ?atol f ~t0:a ~t1:b !x in
    x := x';
    out.(i) <- (b, !x)
  done;
  out
