lib/ode/ctrapezoid.mli: Scnoise_linalg
