lib/ode/rkf45.ml: Array List Scnoise_linalg
