lib/ode/trapezoid.mli: Scnoise_linalg
