lib/ode/ctrapezoid.ml: Array Scnoise_linalg
