lib/ode/trapezoid.ml: Array Scnoise_linalg
