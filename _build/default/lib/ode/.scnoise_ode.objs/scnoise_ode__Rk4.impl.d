lib/ode/rk4.ml: Array Scnoise_linalg
