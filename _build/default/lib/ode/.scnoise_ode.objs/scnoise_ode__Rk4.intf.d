lib/ode/rk4.mli: Scnoise_linalg
