lib/ode/rkf45.mli: Rk4 Scnoise_linalg
