module Vec = Scnoise_linalg.Vec
module Mat = Scnoise_linalg.Mat
module Lu = Scnoise_linalg.Lu

type stepper = {
  h : float;
  lhs : Lu.t; (* I - h/2 A *)
  rhs : Mat.t; (* I + h/2 A *)
}

let make ~a ~h =
  if not (Mat.is_square a) then invalid_arg "Trapezoid.make: not square";
  if h <= 0.0 then invalid_arg "Trapezoid.make: h <= 0";
  let n = Mat.rows a in
  let ident = Mat.identity n in
  let half = Mat.scale (0.5 *. h) a in
  { h; lhs = Lu.factor (Mat.sub ident half); rhs = Mat.add ident half }

let step st ~x ~f0 ~f1 =
  let b = Mat.mul_vec st.rhs x in
  Vec.axpy (0.5 *. st.h) f0 b;
  Vec.axpy (0.5 *. st.h) f1 b;
  Lu.solve st.lhs b

let step_homogeneous st x = Lu.solve st.lhs (Mat.mul_vec st.rhs x)

let integrate ~a ~forcing ~t0 ~t1 ~steps x0 =
  if steps < 1 then invalid_arg "Trapezoid.integrate: steps < 1";
  let h = (t1 -. t0) /. float_of_int steps in
  let st = make ~a ~h in
  let x = ref x0 in
  let f = ref (forcing t0) in
  for i = 1 to steps do
    let t_next = t0 +. (h *. float_of_int i) in
    let f_next = forcing t_next in
    x := step st ~x:!x ~f0:!f ~f1:f_next;
    f := f_next
  done;
  !x

let trajectory ~a ~forcing ~t0 ~t1 ~steps x0 =
  if steps < 1 then invalid_arg "Trapezoid.trajectory: steps < 1";
  let h = (t1 -. t0) /. float_of_int steps in
  let st = make ~a ~h in
  let out = Array.make (steps + 1) (t0, x0) in
  let x = ref x0 in
  let f = ref (forcing t0) in
  for i = 1 to steps do
    let t_next = t0 +. (h *. float_of_int i) in
    let f_next = forcing t_next in
    x := step st ~x:!x ~f0:!f ~f1:f_next;
    f := f_next;
    out.(i) <- (t_next, !x)
  done;
  out

let backward_euler_step ~a ~h ~x ~f1 =
  let n = Mat.rows a in
  let lhs = Mat.sub (Mat.identity n) (Mat.scale h a) in
  let b = Vec.copy x in
  Vec.axpy h f1 b;
  Lu.solve_dense lhs b
