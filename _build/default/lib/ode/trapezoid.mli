(** A-stable trapezoidal integration for linear systems
    [dx/dt = A x + f(t)] with constant [A] over the integration window —
    the regime of one clock phase of a switched linear circuit.

    The step matrix [(I - h/2 A)] is factored once per (A, h) pair and
    reused, which keeps long transients cheap. *)

module Vec = Scnoise_linalg.Vec
module Mat = Scnoise_linalg.Mat

type stepper
(** A prepared stepper for fixed [A] and step [h]. *)

val make : a:Mat.t -> h:float -> stepper
(** Prepare a trapezoidal stepper.  Raises [Lu.Singular] if
    [(I - h/2 A)] is singular (never for dissipative circuits). *)

val step : stepper -> x:Vec.t -> f0:Vec.t -> f1:Vec.t -> Vec.t
(** One step: [f0], [f1] are the forcing evaluated at the step's start
    and end. *)

val step_homogeneous : stepper -> Vec.t -> Vec.t
(** One unforced step. *)

val integrate :
  a:Mat.t -> forcing:(float -> Vec.t) -> t0:float -> t1:float -> steps:int ->
  Vec.t -> Vec.t
(** Fixed-step integration over [\[t0, t1\]]. *)

val trajectory :
  a:Mat.t -> forcing:(float -> Vec.t) -> t0:float -> t1:float -> steps:int ->
  Vec.t -> (float * Vec.t) array
(** As {!integrate}, returning all samples. *)

val backward_euler_step : a:Mat.t -> h:float -> x:Vec.t -> f1:Vec.t -> Vec.t
(** Single backward-Euler step [(I - hA) x' = x + h f1]; L-stable
    reference used in ablation benches. *)
