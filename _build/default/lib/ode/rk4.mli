(** Classical fixed-step fourth-order Runge-Kutta for general ODEs
    [dx/dt = f t x].  Non-stiff use only (large-signal waveforms of
    well-scaled systems); the noise engines use the A-stable trapezoidal
    steppers instead. *)

type f = float -> Scnoise_linalg.Vec.t -> Scnoise_linalg.Vec.t

val step : f -> float -> float -> Scnoise_linalg.Vec.t -> Scnoise_linalg.Vec.t
(** [step f t h x] advances one step of size [h]. *)

val integrate :
  f -> t0:float -> t1:float -> steps:int -> Scnoise_linalg.Vec.t ->
  Scnoise_linalg.Vec.t
(** [integrate f ~t0 ~t1 ~steps x0] advances from [t0] to [t1] in
    [steps] equal steps and returns the final state. *)

val trajectory :
  f -> t0:float -> t1:float -> steps:int -> Scnoise_linalg.Vec.t ->
  (float * Scnoise_linalg.Vec.t) array
(** Like {!integrate} but returns all [steps + 1] samples including the
    initial one. *)
