(** Trapezoidal integration for complex shifted linear systems
    [dP/dt = (A - s I) P + k(t)] with real [A] and complex shift [s].

    This is the equation obeyed by the periodic envelope of the
    cross-spectral density in the mixed-frequency-time method, where
    [s = j w] for analysis frequency [w]. *)

module Cvec = Scnoise_linalg.Cvec
module Mat = Scnoise_linalg.Mat
module Cx = Scnoise_linalg.Cx

type stepper

val make : a:Mat.t -> shift:Cx.t -> h:float -> stepper
(** Prepare a stepper for [dP/dt = (A - shift·I) P + k]. *)

val step : stepper -> p:Cvec.t -> k0:Cvec.t -> k1:Cvec.t -> Cvec.t

val step_homogeneous : stepper -> Cvec.t -> Cvec.t

val trajectory :
  a:Mat.t -> shift:Cx.t -> forcing:(int -> Cvec.t) -> h:float -> steps:int ->
  Cvec.t -> Cvec.t array
(** [trajectory ~a ~shift ~forcing ~h ~steps p0] integrates from sample 0
    to sample [steps] with the forcing given by its grid samples
    ([forcing i] is [k] at [t = i h]); returns all [steps + 1] states. *)
