(** Runge-Kutta-Fehlberg 4(5) with adaptive step control.

    Step sizes are chosen from the embedded local-truncation-error
    estimate, mirroring the LTE-controlled integration described for the
    prototype implementation of the source papers. *)

type stats = { steps_accepted : int; steps_rejected : int }

val integrate :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?h_min:float -> ?max_steps:int ->
  Rk4.f -> t0:float -> t1:float -> Scnoise_linalg.Vec.t ->
  Scnoise_linalg.Vec.t * stats
(** [integrate f ~t0 ~t1 x0] integrates with adaptive steps.  Defaults:
    [rtol = 1e-8], [atol = 1e-12], initial step [(t1-t0)/100],
    [h_min = (t1-t0) * 1e-12], [max_steps = 1_000_000].  Raises [Failure]
    when the controller stalls at [h_min] or exceeds [max_steps]. *)

val sample :
  ?rtol:float -> ?atol:float ->
  Rk4.f -> t0:float -> t1:float -> n:int -> Scnoise_linalg.Vec.t ->
  (float * Scnoise_linalg.Vec.t) array
(** Integrate adaptively but report the solution on [n+1] uniformly
    spaced output points (dense output by integration between points). *)
