module Vec = Scnoise_linalg.Vec

type f = float -> Vec.t -> Vec.t

let step f t h x =
  let k1 = f t x in
  let k2 = f (t +. (0.5 *. h)) (Vec.add x (Vec.scale (0.5 *. h) k1)) in
  let k3 = f (t +. (0.5 *. h)) (Vec.add x (Vec.scale (0.5 *. h) k2)) in
  let k4 = f (t +. h) (Vec.add x (Vec.scale h k3)) in
  let incr =
    Vec.add (Vec.add k1 (Vec.scale 2.0 k2)) (Vec.add (Vec.scale 2.0 k3) k4)
  in
  Vec.add x (Vec.scale (h /. 6.0) incr)

let integrate f ~t0 ~t1 ~steps x0 =
  if steps < 1 then invalid_arg "Rk4.integrate: steps < 1";
  let h = (t1 -. t0) /. float_of_int steps in
  let x = ref x0 in
  for i = 0 to steps - 1 do
    let t = t0 +. (h *. float_of_int i) in
    x := step f t h !x
  done;
  !x

let trajectory f ~t0 ~t1 ~steps x0 =
  if steps < 1 then invalid_arg "Rk4.trajectory: steps < 1";
  let h = (t1 -. t0) /. float_of_int steps in
  let out = Array.make (steps + 1) (t0, x0) in
  let x = ref x0 in
  for i = 1 to steps do
    let t = t0 +. (h *. float_of_int (i - 1)) in
    x := step f t h !x;
    out.(i) <- (t +. h, !x)
  done;
  out
