(** Compiled piecewise-LTI representation of a periodically switched
    linear circuit.

    Within clock phase [p] the noise perturbation obeys
    [dx = A_p x dt + B_p dW] and the large signal obeys
    [dx/dt = A_p x + E_p u(t) + Edot_p du/dt]; the state vector is
    continuous across phase boundaries (switches are resistive). *)

module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec

type phase = {
  tau : float;  (** phase duration, s *)
  a : Mat.t;  (** state matrix (n x n) *)
  b : Mat.t;  (** noise intensity matrix (n x m_p) *)
  q : Mat.t;  (** [b bᵀ], cached *)
  e : Mat.t;  (** deterministic input matrix (n x n_inputs) *)
  e_dot : Mat.t;  (** input-derivative matrix (n x n_inputs) *)
  noise_labels : string array;  (** one per column of [b] *)
}

type input = {
  label : string;
  waveform : float -> float;
}

type t = {
  period : float;
  phases : phase array;
  nstates : int;
  state_names : string array;
  inputs : input array;
  observables : (string * Vec.t) list;
      (** node name -> row extracting that node voltage from the state *)
}

val n_phases : t -> int

val phase_start : t -> int -> float

val phase_at : t -> float -> int * float
(** Phase index and offset for an absolute time (reduced mod period). *)

val observable : t -> string -> Vec.t
(** Row extracting the named node's voltage from the state vector.
    Raises [Not_found] for unknown or non-observable (purely resistive or
    source-driven) nodes. *)

val observable_diff : t -> string -> string -> Vec.t
(** [observable_diff t a b] extracts [v_a - v_b]. *)

val state_index : t -> string -> int
(** Index of a named state.  Raises [Not_found]. *)

val input_vector : t -> float -> Vec.t
(** Values of all inputs at a time. *)

val input_derivative : t -> float -> Vec.t
(** Centred finite-difference derivative of the inputs (step
    [period * 1e-7]). *)

val forcing : t -> int -> float -> Vec.t
(** [forcing t p time] is [E_p u(time) + Edot_p du/dt] — the
    deterministic forcing of phase [p] at absolute time [time]. *)

val monodromy : t -> Mat.t
(** State-transition matrix over one full period starting at phase 0
    (computed by per-phase matrix exponentials). *)

val is_stable : ?margin:float -> t -> bool
(** All Floquet multipliers (eigenvalues of the monodromy) strictly
    inside the unit disc (by more than [margin], default 0). *)

val floquet_multipliers : t -> Scnoise_linalg.Cx.t array

val validate : t -> unit
(** Internal consistency checks (dimensions, durations); raises
    [Invalid_argument] on violation.  Compiled systems always pass. *)
