module Vec = Scnoise_linalg.Vec
module Trapezoid = Scnoise_ode.Trapezoid

type waveform = { times : float array; states : Vec.t array }

let transient ?(steps_per_phase = 64) sys ~periods ~x0 =
  if periods < 1 then invalid_arg "Simulate.transient: periods < 1";
  if steps_per_phase < 1 then invalid_arg "Simulate.transient: steps < 1";
  let np = Pwl.n_phases sys in
  let total = (periods * np * steps_per_phase) + 1 in
  let times = Array.make total 0.0 in
  let states = Array.make total x0 in
  let idx = ref 1 in
  let x = ref x0 in
  let t = ref 0.0 in
  for _ = 1 to periods do
    for p = 0 to np - 1 do
      let ph = sys.Pwl.phases.(p) in
      let h = ph.Pwl.tau /. float_of_int steps_per_phase in
      let st = Trapezoid.make ~a:ph.Pwl.a ~h in
      let f = ref (Pwl.forcing sys p !t) in
      for _ = 1 to steps_per_phase do
        let t_next = !t +. h in
        let f_next = Pwl.forcing sys p t_next in
        x := Trapezoid.step st ~x:!x ~f0:!f ~f1:f_next;
        f := f_next;
        t := t_next;
        times.(!idx) <- !t;
        states.(!idx) <- !x;
        incr idx
      done
    done
  done;
  { times; states }

let observe sys name wf =
  let row = Pwl.observable sys name in
  Array.map (fun x -> Vec.dot row x) wf.states

let steady_state ?(steps_per_phase = 64) ?(tol = 1e-10) ?(max_periods = 10_000)
    sys ~x0 =
  let np = Pwl.n_phases sys in
  let advance_period x t0 =
    let x = ref x and t = ref t0 in
    for p = 0 to np - 1 do
      let ph = sys.Pwl.phases.(p) in
      let h = ph.Pwl.tau /. float_of_int steps_per_phase in
      let st = Trapezoid.make ~a:ph.Pwl.a ~h in
      let f = ref (Pwl.forcing sys p !t) in
      for _ = 1 to steps_per_phase do
        let t_next = !t +. h in
        let f_next = Pwl.forcing sys p t_next in
        x := Trapezoid.step st ~x:!x ~f0:!f ~f1:f_next;
        f := f_next;
        t := t_next
      done
    done;
    !x
  in
  let rec loop x t0 k =
    if k > max_periods then failwith "Simulate.steady_state: did not converge";
    let x' = advance_period x t0 in
    let scale = 1.0 +. Vec.norm_inf x' in
    if Vec.max_abs_diff x x' <= tol *. scale then x'
    else loop x' (t0 +. sys.Pwl.period) (k + 1)
  in
  loop x0 0.0 1
