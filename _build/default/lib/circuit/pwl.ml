module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Expm = Scnoise_linalg.Expm
module Eig = Scnoise_linalg.Eig

type phase = {
  tau : float;
  a : Mat.t;
  b : Mat.t;
  q : Mat.t;
  e : Mat.t;
  e_dot : Mat.t;
  noise_labels : string array;
}

type input = { label : string; waveform : float -> float }

type t = {
  period : float;
  phases : phase array;
  nstates : int;
  state_names : string array;
  inputs : input array;
  observables : (string * Vec.t) list;
}

let n_phases t = Array.length t.phases

let phase_start t i =
  if i < 0 || i >= n_phases t then invalid_arg "Pwl.phase_start: bad index";
  let acc = ref 0.0 in
  for k = 0 to i - 1 do
    acc := !acc +. t.phases.(k).tau
  done;
  !acc

let phase_at t time =
  let tm = Float.rem time t.period in
  let tm = if tm < 0.0 then tm +. t.period else tm in
  let n = n_phases t in
  let rec find i start =
    let tau = t.phases.(i).tau in
    if i = n - 1 || tm < start +. tau then (i, tm -. start)
    else find (i + 1) (start +. tau)
  in
  find 0 0.0

let observable t name = List.assoc name t.observables

let observable_diff t a b =
  Vec.sub (observable t a) (observable t b)

let state_index t name =
  let rec find i =
    if i >= t.nstates then raise Not_found
    else if t.state_names.(i) = name then i
    else find (i + 1)
  in
  find 0

let input_vector t time =
  Array.map (fun inp -> inp.waveform time) t.inputs

let input_derivative t time =
  let h = t.period *. 1e-7 in
  Array.map
    (fun inp -> (inp.waveform (time +. h) -. inp.waveform (time -. h)) /. (2.0 *. h))
    t.inputs

let forcing t p time =
  if p < 0 || p >= n_phases t then invalid_arg "Pwl.forcing: bad phase";
  let ph = t.phases.(p) in
  if Array.length t.inputs = 0 then Vec.create t.nstates
  else begin
    let u = input_vector t time in
    let du = input_derivative t time in
    Vec.add (Mat.mul_vec ph.e u) (Mat.mul_vec ph.e_dot du)
  end

let monodromy t =
  Array.fold_left
    (fun acc ph -> Mat.mul (Expm.expm_scaled ph.a ph.tau) acc)
    (Mat.identity t.nstates) t.phases

let floquet_multipliers t = Eig.eigenvalues (monodromy t)

let is_stable ?(margin = 0.0) t =
  Eig.spectral_radius (monodromy t) < 1.0 -. margin

let validate t =
  let n = t.nstates in
  if Array.length t.state_names <> n then
    invalid_arg "Pwl.validate: state_names length";
  if n_phases t = 0 then invalid_arg "Pwl.validate: no phases";
  let total = Array.fold_left (fun acc p -> acc +. p.tau) 0.0 t.phases in
  if abs_float (total -. t.period) > 1e-9 *. t.period then
    invalid_arg "Pwl.validate: phase durations do not sum to the period";
  Array.iter
    (fun p ->
      if p.tau <= 0.0 then invalid_arg "Pwl.validate: non-positive tau";
      if Mat.rows p.a <> n || Mat.cols p.a <> n then
        invalid_arg "Pwl.validate: A dimensions";
      if Mat.rows p.b <> n then invalid_arg "Pwl.validate: B rows";
      if Array.length p.noise_labels <> Mat.cols p.b then
        invalid_arg "Pwl.validate: noise labels";
      if Mat.rows p.q <> n || Mat.cols p.q <> n then
        invalid_arg "Pwl.validate: Q dimensions";
      if Mat.rows p.e <> n || Mat.cols p.e <> Array.length t.inputs then
        invalid_arg "Pwl.validate: E dimensions";
      if Mat.rows p.e_dot <> n || Mat.cols p.e_dot <> Array.length t.inputs
      then invalid_arg "Pwl.validate: Edot dimensions")
    t.phases;
  List.iter
    (fun (_, row) ->
      if Array.length row <> n then invalid_arg "Pwl.validate: observable row")
    t.observables
