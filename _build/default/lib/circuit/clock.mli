(** Periodic multi-phase clock schedules.

    A clock divides its period into an ordered list of phases; switches
    in a {!Netlist} declare the phase indices during which they conduct.
    Phase indices run from 0 in schedule order. *)

type t

val make : float list -> t
(** [make durations] builds a schedule from positive phase durations; the
    period is their sum.  Raises [Invalid_argument] on an empty list or a
    non-positive duration. *)

val duty : period:float -> duty:float -> t
(** Two phases [d*T] (index 0, e.g. "switch closed") and [(1-d)*T]
    (index 1).  Requires [0 < duty < 1]. *)

val two_phase : ?gap_fraction:float -> period:float -> unit -> t
(** Non-overlapping two-phase clock: [phi1, gap, phi2, gap] with phase
    indices 0..3; each gap takes [gap_fraction] of the period (default
    0.01), the remainder is split evenly between [phi1] (index 0) and
    [phi2] (index 2). *)

val period : t -> float

val n_phases : t -> int

val durations : t -> float array

val phase_start : t -> int -> float
(** Start time (within one period) of a phase. *)

val phase_at : t -> float -> int * float
(** [phase_at t time] is the phase index active at [time] (any real
    time; reduced modulo the period) together with the offset into that
    phase. *)
