(** Compiler from a {!Netlist} plus a {!Clock} to the phase-wise LTI
    state-space form {!Pwl.t}.

    The state vector is [ [capacitor-node voltages; integrator-op-amp
    states] ].  For every clock phase the compiler stamps the conductance
    matrix (closed switches included), eliminates purely resistive nodes
    by a Schur complement — mapping the noise injected there onto the
    dynamic equations — and assembles

    [dx = A_p x dt + B_p dW + E_p u dt + Edot_p du] .

    Noise sources carried into [B_p]: thermal noise of resistors and
    closed switches ([2kT/R], double-sided), explicit white current
    sources, and op-amp input-referred voltage noise.

    Diagnostics: a singular capacitance sub-matrix (floating capacitor
    network) raises {!Error}; a resistive node left without a conductive
    path in some phase is grounded through [g_leak] (default 1e-12 S)
    with a warning log. *)

exception Error of string

val compile :
  ?temperature:float -> ?g_leak:float -> Netlist.t -> Clock.t -> Pwl.t
(** [compile netlist clock] builds the piecewise-LTI system.
    [temperature] (K, default 300) sets thermal noise intensities.
    Raises {!Error} on structural problems (switch phases out of range,
    floating capacitor networks, no states). *)
