type t = { period : float; durations : float array; starts : float array }

let make durations =
  if durations = [] then invalid_arg "Clock.make: no phases";
  List.iter
    (fun d -> if d <= 0.0 then invalid_arg "Clock.make: non-positive duration")
    durations;
  let durations = Array.of_list durations in
  let n = Array.length durations in
  let starts = Array.make n 0.0 in
  for i = 1 to n - 1 do
    starts.(i) <- starts.(i - 1) +. durations.(i - 1)
  done;
  let period = starts.(n - 1) +. durations.(n - 1) in
  { period; durations; starts }

let duty ~period ~duty =
  if period <= 0.0 then invalid_arg "Clock.duty: period <= 0";
  if duty <= 0.0 || duty >= 1.0 then invalid_arg "Clock.duty: need 0 < duty < 1";
  make [ duty *. period; (1.0 -. duty) *. period ]

let two_phase ?(gap_fraction = 0.01) ~period () =
  if period <= 0.0 then invalid_arg "Clock.two_phase: period <= 0";
  if gap_fraction <= 0.0 || gap_fraction >= 0.5 then
    invalid_arg "Clock.two_phase: need 0 < gap_fraction < 0.5";
  let gap = gap_fraction *. period in
  let half = (period -. (2.0 *. gap)) /. 2.0 in
  make [ half; gap; half; gap ]

let period t = t.period

let n_phases t = Array.length t.durations

let durations t = Array.copy t.durations

let phase_start t i =
  if i < 0 || i >= Array.length t.starts then
    invalid_arg "Clock.phase_start: bad phase index";
  t.starts.(i)

let phase_at t time =
  let tm = Float.rem time t.period in
  let tm = if tm < 0.0 then tm +. t.period else tm in
  let n = Array.length t.durations in
  let rec find i =
    if i = n - 1 then (i, tm -. t.starts.(i))
    else if tm < t.starts.(i + 1) then (i, tm -. t.starts.(i))
    else find (i + 1)
  in
  find 0
