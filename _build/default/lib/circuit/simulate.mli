(** Large-signal transient simulation of a compiled {!Pwl.t} system.

    Phase-wise trapezoidal integration (A-stable); used by the examples
    and by signal-transfer-function sanity checks.  Noise inputs are not
    sampled here — see the Monte-Carlo engine in the noise library. *)

module Vec = Scnoise_linalg.Vec

type waveform = { times : float array; states : Vec.t array }

val transient :
  ?steps_per_phase:int -> Pwl.t -> periods:int -> x0:Vec.t -> waveform
(** [transient sys ~periods ~x0] integrates [periods] full clock periods
    starting at [t = 0] from [x0], with [steps_per_phase] (default 64)
    trapezoidal steps per clock phase.  Returns all interior samples. *)

val observe : Pwl.t -> string -> waveform -> float array
(** Extract a node-voltage trace from a waveform. *)

val steady_state :
  ?steps_per_phase:int -> ?tol:float -> ?max_periods:int -> Pwl.t ->
  x0:Vec.t -> Vec.t
(** Integrate period-by-period until the state at the period boundary
    stops changing ([tol], default 1e-10 relative) and return it.
    Raises [Failure] after [max_periods] (default 10_000). *)
