type node = int

type element =
  | Resistor of { name : string; n1 : int; n2 : int; r : float; noisy : bool }
  | Capacitor of { name : string; n1 : int; n2 : int; c : float }
  | Switch of {
      name : string;
      n1 : int;
      n2 : int;
      r_on : float;
      noisy : bool;
      closed_in : int list;
    }
  | Vsource of { name : string; n : int; waveform : float -> float }
  | Isource of { name : string; n1 : int; n2 : int; waveform : float -> float }
  | Noise_isource of { name : string; n1 : int; n2 : int; psd : float }
  | Flicker_isource of {
      name : string;
      n1 : int;
      n2 : int;
      psd_1hz : float;
      fmin : float;
      fmax : float;
      sections_per_decade : int;
    }
  | Opamp_integrator of {
      name : string;
      plus : int;
      minus : int;
      out : int;
      ugf : float;
      input_noise_psd : float;
    }
  | Opamp_single_stage of {
      name : string;
      plus : int;
      minus : int;
      out : int;
      gm : float;
      rout : float;
      cout : float;
      input_noise_psd : float;
    }

type t = {
  mutable names : string list; (* reversed; index 1 = first created *)
  mutable n_nodes : int;
  by_name : (string, int) Hashtbl.t;
  mutable elements : element list; (* reversed *)
  mutable n_elements : int;
  mutable driven : (int * string) list; (* node id, driver name *)
}

let create () =
  {
    names = [];
    n_nodes = 0;
    by_name = Hashtbl.create 16;
    elements = [];
    n_elements = 0;
    driven = [];
  }

let ground = 0

let node t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      t.n_nodes <- t.n_nodes + 1;
      t.names <- name :: t.names;
      Hashtbl.add t.by_name name t.n_nodes;
      t.n_nodes

let node_name t n =
  if n = 0 then "0"
  else if n < 0 || n > t.n_nodes then invalid_arg "Netlist.node_name: bad node"
  else List.nth t.names (t.n_nodes - n)

let n_nodes t = t.n_nodes

let node_id n = n

let node_of_id t id =
  if id < 0 || id > t.n_nodes then invalid_arg "Netlist.node_of_id: bad id";
  id

let check_node t n what =
  if n < 0 || n > t.n_nodes then
    invalid_arg (Printf.sprintf "Netlist.%s: unknown node" what)

let check_distinct n1 n2 what =
  if n1 = n2 then
    invalid_arg (Printf.sprintf "Netlist.%s: both terminals on the same node" what)

let fresh_name t prefix =
  Printf.sprintf "%s%d" prefix (t.n_elements + 1)

let push t e =
  t.elements <- e :: t.elements;
  t.n_elements <- t.n_elements + 1

let mark_driven t n driver =
  if n = ground then
    invalid_arg (Printf.sprintf "Netlist: %s cannot drive ground" driver);
  match List.assoc_opt n t.driven with
  | Some other ->
      invalid_arg
        (Printf.sprintf "Netlist: node %s driven by both %s and %s"
           (node_name t n) other driver)
  | None -> t.driven <- (n, driver) :: t.driven

let resistor ?name ?(noisy = true) t n1 n2 r =
  check_node t n1 "resistor";
  check_node t n2 "resistor";
  check_distinct n1 n2 "resistor";
  if r <= 0.0 then invalid_arg "Netlist.resistor: r <= 0";
  let name = match name with Some s -> s | None -> fresh_name t "R" in
  push t (Resistor { name; n1; n2; r; noisy })

let capacitor ?name t n1 n2 c =
  check_node t n1 "capacitor";
  check_node t n2 "capacitor";
  check_distinct n1 n2 "capacitor";
  if c <= 0.0 then invalid_arg "Netlist.capacitor: c <= 0";
  let name = match name with Some s -> s | None -> fresh_name t "C" in
  push t (Capacitor { name; n1; n2; c })

let switch ?name ?(noisy = true) ~closed_in t n1 n2 r_on =
  check_node t n1 "switch";
  check_node t n2 "switch";
  check_distinct n1 n2 "switch";
  if r_on <= 0.0 then invalid_arg "Netlist.switch: r_on <= 0";
  if closed_in = [] then invalid_arg "Netlist.switch: never closed";
  List.iter
    (fun p -> if p < 0 then invalid_arg "Netlist.switch: negative phase index")
    closed_in;
  let name = match name with Some s -> s | None -> fresh_name t "S" in
  push t (Switch { name; n1; n2; r_on; noisy; closed_in })

let vsource ?name t n waveform =
  check_node t n "vsource";
  let name = match name with Some s -> s | None -> fresh_name t "V" in
  mark_driven t n name;
  push t (Vsource { name; n; waveform })

let vsource_dc ?name t n v = vsource ?name t n (fun _ -> v)

let isource ?name t n1 n2 waveform =
  check_node t n1 "isource";
  check_node t n2 "isource";
  check_distinct n1 n2 "isource";
  let name = match name with Some s -> s | None -> fresh_name t "I" in
  push t (Isource { name; n1; n2; waveform })

let noise_isource ?name t n1 n2 ~psd =
  check_node t n1 "noise_isource";
  check_node t n2 "noise_isource";
  check_distinct n1 n2 "noise_isource";
  if psd < 0.0 then invalid_arg "Netlist.noise_isource: psd < 0";
  let name = match name with Some s -> s | None -> fresh_name t "IN" in
  push t (Noise_isource { name; n1; n2; psd })

let flicker_isource ?name ?(sections_per_decade = 2) t n1 n2 ~psd_1hz ~fmin
    ~fmax =
  check_node t n1 "flicker_isource";
  check_node t n2 "flicker_isource";
  check_distinct n1 n2 "flicker_isource";
  if psd_1hz <= 0.0 then invalid_arg "Netlist.flicker_isource: psd_1hz <= 0";
  if fmin <= 0.0 || fmax <= fmin then
    invalid_arg "Netlist.flicker_isource: need 0 < fmin < fmax";
  if sections_per_decade < 1 then
    invalid_arg "Netlist.flicker_isource: sections_per_decade < 1";
  let name = match name with Some s -> s | None -> fresh_name t "IF" in
  push t
    (Flicker_isource { name; n1; n2; psd_1hz; fmin; fmax; sections_per_decade })

let opamp_integrator ?name ?(input_noise_psd = 0.0) t ~plus ~minus ~out ~ugf =
  check_node t plus "opamp_integrator";
  check_node t minus "opamp_integrator";
  check_node t out "opamp_integrator";
  if ugf <= 0.0 then invalid_arg "Netlist.opamp_integrator: ugf <= 0";
  if input_noise_psd < 0.0 then
    invalid_arg "Netlist.opamp_integrator: input_noise_psd < 0";
  let name = match name with Some s -> s | None -> fresh_name t "OA" in
  mark_driven t out name;
  push t (Opamp_integrator { name; plus; minus; out; ugf; input_noise_psd })

let opamp_single_stage ?name ?(input_noise_psd = 0.0) t ~plus ~minus ~out ~gm
    ~rout ~cout =
  check_node t plus "opamp_single_stage";
  check_node t minus "opamp_single_stage";
  check_node t out "opamp_single_stage";
  if out = ground then invalid_arg "Netlist.opamp_single_stage: out is ground";
  if gm <= 0.0 then invalid_arg "Netlist.opamp_single_stage: gm <= 0";
  if rout <= 0.0 then invalid_arg "Netlist.opamp_single_stage: rout <= 0";
  if cout <= 0.0 then invalid_arg "Netlist.opamp_single_stage: cout <= 0";
  if input_noise_psd < 0.0 then
    invalid_arg "Netlist.opamp_single_stage: input_noise_psd < 0";
  let name = match name with Some s -> s | None -> fresh_name t "OA" in
  push t
    (Opamp_single_stage
       { name; plus; minus; out; gm; rout; cout; input_noise_psd })

let elements t = List.rev t.elements

let max_phase_index t =
  List.fold_left
    (fun acc e ->
      match e with
      | Switch { closed_in; _ } -> List.fold_left max acc closed_in
      | Resistor _ | Capacitor _ | Vsource _ | Isource _ | Noise_isource _
      | Flicker_isource _ | Opamp_integrator _ | Opamp_single_stage _ ->
          acc)
    (-1) t.elements

let pp fmt t =
  Format.fprintf fmt "@[<v>netlist: %d nodes, %d elements@," t.n_nodes
    t.n_elements;
  List.iter
    (fun e ->
      let nn = node_name t in
      match e with
      | Resistor { name; n1; n2; r; noisy } ->
          Format.fprintf fmt "R %s %s %s %g%s@," name (nn n1) (nn n2) r
            (if noisy then "" else " noiseless")
      | Capacitor { name; n1; n2; c } ->
          Format.fprintf fmt "C %s %s %s %g@," name (nn n1) (nn n2) c
      | Switch { name; n1; n2; r_on; closed_in; _ } ->
          Format.fprintf fmt "S %s %s %s %g phases=%s@," name (nn n1) (nn n2)
            r_on
            (String.concat "," (List.map string_of_int closed_in))
      | Vsource { name; n; _ } -> Format.fprintf fmt "V %s %s@," name (nn n)
      | Isource { name; n1; n2; _ } ->
          Format.fprintf fmt "I %s %s %s@," name (nn n1) (nn n2)
      | Noise_isource { name; n1; n2; psd } ->
          Format.fprintf fmt "IN %s %s %s psd=%g@," name (nn n1) (nn n2) psd
      | Flicker_isource { name; n1; n2; psd_1hz; fmin; fmax; _ } ->
          Format.fprintf fmt "IF %s %s %s psd@1Hz=%g band=[%g,%g]@," name
            (nn n1) (nn n2) psd_1hz fmin fmax
      | Opamp_integrator { name; plus; minus; out; ugf; _ } ->
          Format.fprintf fmt "OA %s +%s -%s out=%s ugf=%g@," name (nn plus)
            (nn minus) (nn out) ugf
      | Opamp_single_stage { name; plus; minus; out; gm; rout; cout; _ } ->
          Format.fprintf fmt "OA1 %s +%s -%s out=%s gm=%g rout=%g cout=%g@,"
            name (nn plus) (nn minus) (nn out) gm rout cout)
    (elements t);
  Format.fprintf fmt "@]"
