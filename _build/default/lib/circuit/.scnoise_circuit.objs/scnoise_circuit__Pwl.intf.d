lib/circuit/pwl.mli: Scnoise_linalg
