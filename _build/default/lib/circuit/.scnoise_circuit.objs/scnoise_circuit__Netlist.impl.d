lib/circuit/netlist.ml: Format Hashtbl List Printf String
