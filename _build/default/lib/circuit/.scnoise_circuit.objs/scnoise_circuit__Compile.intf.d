lib/circuit/compile.mli: Clock Netlist Pwl
