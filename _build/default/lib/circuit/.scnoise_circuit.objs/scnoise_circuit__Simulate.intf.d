lib/circuit/simulate.mli: Pwl Scnoise_linalg
