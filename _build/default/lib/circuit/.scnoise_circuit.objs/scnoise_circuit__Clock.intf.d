lib/circuit/clock.mli:
