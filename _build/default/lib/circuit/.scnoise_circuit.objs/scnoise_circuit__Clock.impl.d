lib/circuit/clock.ml: Array Float List
