lib/circuit/compile.ml: Array Clock Float Hashtbl List Logs Netlist Printf Pwl Scnoise_linalg Scnoise_util
