lib/circuit/pwl.ml: Array Float List Scnoise_linalg
