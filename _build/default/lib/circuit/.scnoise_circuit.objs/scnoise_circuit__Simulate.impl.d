lib/circuit/simulate.ml: Array Pwl Scnoise_linalg Scnoise_ode
