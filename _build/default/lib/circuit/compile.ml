module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Lu = Scnoise_linalg.Lu
module Const = Scnoise_util.Const

exception Error of string

let src = Logs.Src.create "scnoise.compile" ~doc:"circuit compiler"

module Log = (val Logs.src_log src : Logs.LOG)

type node_class = Ground | Dynamic of int | Resistive of int | Driven of int

(* A noise source as stamped before resistive-node elimination:
   [inj] is the current injection over all non-ground nodes, [xinj] the
   direct contribution to op-amp state rows. *)
type noise_src = { label : string; inj : Vec.t; xinj : Vec.t }

(* local copies of inlined-record payloads (they cannot escape their
   constructors) *)
type opamp_int = {
  oi_name : string;
  oi_plus : int;
  oi_minus : int;
  oi_out : int;
  oi_ugf : float;
  oi_vn_psd : float;
}

type vsrc = { vs_name : string; vs_node : int; vs_wave : float -> float }

type isrc = { is_name : string; is_n1 : int; is_n2 : int; is_wave : float -> float }

(* one first-order shaping section of a 1/f source *)
type flicker_section = {
  fk_label : string;
  fk_n1 : int;
  fk_n2 : int;
  fk_omega : float; (* pole, rad/s *)
  fk_sigma : float; (* dW intensity of the section state *)
}

let compile ?(temperature = Const.room_temperature) ?(g_leak = 1e-12) nl clock
    =
  let elements = Netlist.elements nl in
  let n_all = Netlist.n_nodes nl in
  let n_phase = Clock.n_phases clock in
  if Netlist.max_phase_index nl >= n_phase then
    raise
      (Error
         (Printf.sprintf
            "switch references phase %d but the clock has only %d phases"
            (Netlist.max_phase_index nl) n_phase));
  (* --- element scans --- *)
  let integrator_opamps =
    List.filter_map
      (function
        | Netlist.Opamp_integrator { name; plus; minus; out; ugf; input_noise_psd }
          ->
            Some
              {
                oi_name = name;
                oi_plus = plus;
                oi_minus = minus;
                oi_out = out;
                oi_ugf = ugf;
                oi_vn_psd = input_noise_psd;
              }
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Switch _
        | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Noise_isource _
        | Netlist.Flicker_isource _ | Netlist.Opamp_single_stage _ ->
            None)
      elements
  in
  let nx = List.length integrator_opamps in
  let vsources =
    List.filter_map
      (function
        | Netlist.Vsource { name; n; waveform } ->
            Some { vs_name = name; vs_node = n; vs_wave = waveform }
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Switch _
        | Netlist.Isource _ | Netlist.Noise_isource _
        | Netlist.Flicker_isource _ | Netlist.Opamp_integrator _
        | Netlist.Opamp_single_stage _ ->
            None)
      elements
  in
  let isources =
    List.filter_map
      (function
        | Netlist.Isource { name; n1; n2; waveform } ->
            Some { is_name = name; is_n1 = n1; is_n2 = n2; is_wave = waveform }
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Switch _
        | Netlist.Vsource _ | Netlist.Noise_isource _
        | Netlist.Flicker_isource _ | Netlist.Opamp_integrator _
        | Netlist.Opamp_single_stage _ ->
            None)
      elements
  in
  (* expand 1/f sources into log-spaced Lorentzian shaping sections:
     sum_k sigma_k^2 w_k / (w_k^2 + w^2) ~ psd_1hz / f when
     sigma_k^2 = 4 ln(r) psd_1hz w_k with per-section pole ratio r *)
  let flicker_sections =
    List.concat_map
      (function
        | Netlist.Flicker_isource
            { name; n1; n2; psd_1hz; fmin; fmax; sections_per_decade } ->
            let decades = log10 (fmax /. fmin) in
            let m =
              max 2
                (1 + int_of_float (ceil (decades *. float_of_int sections_per_decade)))
            in
            let ratio = (fmax /. fmin) ** (1.0 /. float_of_int (m - 1)) in
            let c = 4.0 *. log ratio *. psd_1hz in
            List.init m (fun k ->
                let fk = fmin *. (ratio ** float_of_int k) in
                let omega = 2.0 *. Float.pi *. fk in
                {
                  fk_label = Printf.sprintf "%s.%d" name k;
                  fk_n1 = n1;
                  fk_n2 = n2;
                  fk_omega = omega;
                  fk_sigma = sqrt (c *. omega);
                })
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Switch _
        | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Noise_isource _
        | Netlist.Opamp_integrator _ | Netlist.Opamp_single_stage _ ->
            [])
      elements
  in
  let nf = List.length flicker_sections in
  let nv = List.length vsources and ni = List.length isources in
  let n_inputs = nv + ni in
  (* driven nodes: vsource nodes then integrator op-amp outputs *)
  let driven_nodes =
    List.map (fun v -> v.vs_node) vsources
    @ List.map (fun o -> o.oi_out) integrator_opamps
  in
  let ns = List.length driven_nodes in
  let driven_index = Hashtbl.create 8 in
  List.iteri (fun j n -> Hashtbl.replace driven_index n j) driven_nodes;
  (* capacitive adjacency *)
  let has_cap = Array.make (n_all + 1) false in
  List.iter
    (fun e ->
      match e with
      | Netlist.Capacitor { n1; n2; _ } ->
          if n1 > 0 then has_cap.(n1) <- true;
          if n2 > 0 then has_cap.(n2) <- true
      | Netlist.Opamp_single_stage { out; _ } -> has_cap.(out) <- true
      | Netlist.Resistor _ | Netlist.Switch _ | Netlist.Vsource _
      | Netlist.Isource _ | Netlist.Noise_isource _ | Netlist.Flicker_isource _
      | Netlist.Opamp_integrator _ ->
          ())
    elements;
  (* classify *)
  let classify = Array.make (n_all + 1) Ground in
  let nd = ref 0 and nr = ref 0 in
  for n = 1 to n_all do
    if Hashtbl.mem driven_index n then
      classify.(n) <- Driven (Hashtbl.find driven_index n)
    else if has_cap.(n) then begin
      classify.(n) <- Dynamic !nd;
      incr nd
    end
    else begin
      classify.(n) <- Resistive !nr;
      incr nr
    end
  done;
  let nd = !nd and nr = !nr in
  let nz_c = nd + nx in
  let nz = nz_c + nf in
  if nz_c = 0 then
    raise (Error "circuit has no state (no capacitors, no op-amps)");
  (* index maps for assembling slices of the full node matrices *)
  let d_nodes = Array.make nd 0 and r_nodes = Array.make nr 0 in
  for n = 1 to n_all do
    match classify.(n) with
    | Dynamic i -> d_nodes.(i) <- n
    | Resistive i -> r_nodes.(i) <- n
    | Ground | Driven _ -> ()
  done;
  (* S_x : driven-node voltage = x of op-amp k ; S_u : = input u *)
  let s_x = Mat.create ns nx and s_u = Mat.create ns n_inputs in
  List.iteri (fun j _ -> Mat.set s_u j j 1.0) vsources;
  List.iteri
    (fun k o ->
      let j = Hashtbl.find driven_index o.oi_out in
      Mat.set s_x j k 1.0)
    integrator_opamps;
  (* --- capacitance Laplacian (phase independent) --- *)
  let c_full = Mat.create n_all n_all in
  let stamp_lap m n1 n2 v =
    if n1 > 0 then Mat.update m (n1 - 1) (n1 - 1) (fun x -> x +. v);
    if n2 > 0 then Mat.update m (n2 - 1) (n2 - 1) (fun x -> x +. v);
    if n1 > 0 && n2 > 0 then begin
      Mat.update m (n1 - 1) (n2 - 1) (fun x -> x -. v);
      Mat.update m (n2 - 1) (n1 - 1) (fun x -> x -. v)
    end
  in
  List.iter
    (fun e ->
      match e with
      | Netlist.Capacitor { n1; n2; c; _ } -> stamp_lap c_full n1 n2 c
      | Netlist.Opamp_single_stage { out; cout; _ } ->
          stamp_lap c_full out 0 cout
      | Netlist.Resistor _ | Netlist.Switch _ | Netlist.Vsource _
      | Netlist.Isource _ | Netlist.Noise_isource _ | Netlist.Flicker_isource _
      | Netlist.Opamp_integrator _ ->
          ())
    elements;
  let rows_of nodes = List.map (fun n -> n - 1) (Array.to_list nodes) in
  let d_rows = rows_of d_nodes and r_rows = rows_of r_nodes in
  let s_rows = List.map (fun n -> n - 1) driven_nodes in
  let c_dd = Mat.submatrix c_full ~rows:d_rows ~cols:d_rows in
  let c_ds = Mat.submatrix c_full ~rows:d_rows ~cols:s_rows in
  let c_lu =
    if nd = 0 then None
    else begin
      try Some (Lu.factor c_dd) with Lu.Singular _ ->
        raise
          (Error
             "singular capacitance matrix: a floating capacitor network has \
              no path to ground or to a driven node; add a (parasitic) \
              capacitor to ground")
    end
  in
  let c_solve m =
    match c_lu with None -> Mat.create 0 (Mat.cols m) | Some lu -> Lu.solve_mat lu m
  in
  (* --- per-phase assembly --- *)
  let kt2 r = sqrt (2.0 *. Const.boltzmann *. temperature /. r) in
  let build_phase p tau =
    let g_full = Mat.create n_all n_all in
    let stamp_g n1 n2 g = stamp_lap g_full n1 n2 g in
    let noise = ref [] in
    let add_noise label inj xinj = noise := { label; inj; xinj } :: !noise in
    let iinj = Mat.create n_all ni in
    let isrc_idx = ref 0 in
    List.iter
      (fun e ->
        match e with
        | Netlist.Resistor { name; n1; n2; r; noisy } ->
            stamp_g n1 n2 (1.0 /. r);
            if noisy then begin
              let inj = Vec.create n_all in
              let i0 = kt2 r in
              if n1 > 0 then inj.(n1 - 1) <- inj.(n1 - 1) +. i0;
              if n2 > 0 then inj.(n2 - 1) <- inj.(n2 - 1) -. i0;
              add_noise name inj (Vec.create nx)
            end
        | Netlist.Switch { name; n1; n2; r_on; noisy; closed_in } ->
            if List.mem p closed_in then begin
              stamp_g n1 n2 (1.0 /. r_on);
              if noisy then begin
                let inj = Vec.create n_all in
                let i0 = kt2 r_on in
                if n1 > 0 then inj.(n1 - 1) <- inj.(n1 - 1) +. i0;
                if n2 > 0 then inj.(n2 - 1) <- inj.(n2 - 1) -. i0;
                add_noise name inj (Vec.create nx)
              end
            end
        | Netlist.Noise_isource { name; n1; n2; psd } ->
            if psd > 0.0 then begin
              let inj = Vec.create n_all in
              let i0 = sqrt psd in
              if n1 > 0 then inj.(n1 - 1) <- inj.(n1 - 1) +. i0;
              if n2 > 0 then inj.(n2 - 1) <- inj.(n2 - 1) -. i0;
              add_noise name inj (Vec.create nx)
            end
        | Netlist.Isource { n1; n2; _ } ->
            if n1 > 0 then Mat.update iinj (n1 - 1) !isrc_idx (fun x -> x +. 1.0);
            if n2 > 0 then Mat.update iinj (n2 - 1) !isrc_idx (fun x -> x -. 1.0);
            incr isrc_idx
        | Netlist.Opamp_single_stage
            { name; plus; minus; out; gm; rout; cout = _; input_noise_psd } ->
            stamp_g out 0 (1.0 /. rout);
            (* controlled source gm (v+ - v-) into [out]: move to LHS *)
            if plus > 0 then
              Mat.update g_full (out - 1) (plus - 1) (fun x -> x -. gm);
            if minus > 0 then
              Mat.update g_full (out - 1) (minus - 1) (fun x -> x +. gm);
            if input_noise_psd > 0.0 then begin
              let inj = Vec.create n_all in
              inj.(out - 1) <- gm *. sqrt input_noise_psd;
              add_noise (name ^ ".vn") inj (Vec.create nx)
            end
        | Netlist.Flicker_isource _ | Netlist.Opamp_integrator _
        | Netlist.Capacitor _ | Netlist.Vsource _ ->
            ())
      elements;
    (* op-amp input-referred noise of integrator models: direct x rows *)
    List.iteri
      (fun k o ->
        if o.oi_vn_psd > 0.0 then begin
          let xinj = Vec.create nx in
          xinj.(k) <- o.oi_ugf *. sqrt o.oi_vn_psd;
          add_noise (o.oi_name ^ ".vn") (Vec.create n_all) xinj
        end)
      integrator_opamps;
    let noise = List.rev !noise in
    let m_noise = List.length noise in
    (* slices *)
    let g_dd = Mat.submatrix g_full ~rows:d_rows ~cols:d_rows in
    let g_dr = Mat.submatrix g_full ~rows:d_rows ~cols:r_rows in
    let g_ds = Mat.submatrix g_full ~rows:d_rows ~cols:s_rows in
    let g_rd = Mat.submatrix g_full ~rows:r_rows ~cols:d_rows in
    let g_rr = Mat.submatrix g_full ~rows:r_rows ~cols:r_rows in
    let g_rs = Mat.submatrix g_full ~rows:r_rows ~cols:s_rows in
    let pick rows v = Array.of_list (List.map (fun i -> v.(i)) rows) in
    (* factor G_rr, patching with g_leak when a phase leaves resistive
       nodes floating *)
    let g_rr_lu =
      if nr = 0 then None
      else begin
        let patched = Mat.copy g_rr in
        let need_patch = ref false in
        for i = 0 to nr - 1 do
          if abs_float (Mat.get patched i i) < g_leak then begin
            Mat.update patched i i (fun x -> x +. g_leak);
            need_patch := true
          end
        done;
        if !need_patch then
          Log.warn (fun m ->
              m "phase %d: floating resistive node(s) grounded through %g S" p
                g_leak);
        try Some (Lu.factor patched) with Lu.Singular _ ->
          let fully = Mat.copy g_rr in
          for i = 0 to nr - 1 do
            Mat.update fully i i (fun x -> x +. g_leak)
          done;
          Log.warn (fun m ->
              m
                "phase %d: resistive subnetwork singular; every resistive \
                 node leaked to ground through %g S" p g_leak);
          Some (Lu.factor fully)
      end
    in
    let r_solve_mat m =
      match g_rr_lu with
      | None -> Mat.create 0 (Mat.cols m)
      | Some lu -> Lu.solve_mat lu m
    in
    let r_solve_vec v =
      match g_rr_lu with None -> [||] | Some lu -> Lu.solve lu v
    in
    let rd = Mat.scale (-1.0) (r_solve_mat g_rd) in
    let rs = Mat.scale (-1.0) (r_solve_mat g_rs) in
    let rn = List.map (fun s -> r_solve_vec (pick r_rows s.inj)) noise in
    let ru =
      Array.init ni (fun j ->
          r_solve_vec (pick r_rows (Mat.col iinj j)))
    in
    (* op-amp state equations: xdot_k = ugf (v+ - v- ) + direct noise *)
    let p_d = Mat.create nx nd
    and p_s = Mat.create nx ns
    and p_n = Mat.create nx m_noise
    and p_u = Mat.create nx ni in
    let resolve_into k sign ugf nnode =
      match classify.(nnode) with
      | Ground -> ()
      | Dynamic i -> Mat.update p_d k i (fun x -> x +. (sign *. ugf))
      | Driven j -> Mat.update p_s k j (fun x -> x +. (sign *. ugf))
      | Resistive q ->
          for i = 0 to nd - 1 do
            Mat.update p_d k i (fun x -> x +. (sign *. ugf *. Mat.get rd q i))
          done;
          for j = 0 to ns - 1 do
            Mat.update p_s k j (fun x -> x +. (sign *. ugf *. Mat.get rs q j))
          done;
          List.iteri
            (fun c col ->
              Mat.update p_n k c (fun x -> x +. (sign *. ugf *. col.(q))))
            rn;
          Array.iteri
            (fun c col ->
              Mat.update p_u k c (fun x -> x +. (sign *. ugf *. col.(q))))
            ru
    in
    List.iteri
      (fun k o ->
        resolve_into k 1.0 o.oi_ugf o.oi_plus;
        resolve_into k (-1.0) o.oi_ugf o.oi_minus)
      integrator_opamps;
    (* direct op-amp noise entries *)
    List.iteri
      (fun c s ->
        for k = 0 to nx - 1 do
          if s.xinj.(k) <> 0.0 then
            Mat.update p_n k c (fun x -> x +. s.xinj.(k))
        done)
      noise;
    (* dynamic-row effective matrices *)
    let gd_eff = Mat.scale (-1.0) (Mat.add g_dd (Mat.mul g_dr rd)) in
    let gs_eff = Mat.scale (-1.0) (Mat.add g_ds (Mat.mul g_dr rs)) in
    let n_eff = Mat.create nd m_noise in
    List.iteri
      (fun c s ->
        let direct = pick d_rows s.inj in
        let via_r = if nr = 0 then Vec.create nd else Mat.mul_vec g_dr (List.nth rn c) in
        for i = 0 to nd - 1 do
          Mat.set n_eff i c (direct.(i) -. via_r.(i))
        done)
      noise;
    let u_eff = Mat.create nd ni in
    for c = 0 to ni - 1 do
      let direct = pick d_rows (Mat.col iinj c) in
      let via_r = if nr = 0 then Vec.create nd else Mat.mul_vec g_dr ru.(c) in
      for i = 0 to nd - 1 do
        Mat.set u_eff i c (direct.(i) -. via_r.(i))
      done
    done;
    (* compose with C_ds * S_x * xdot coupling *)
    let cds_sx = Mat.mul c_ds s_x in
    let top_a_d = c_solve (Mat.sub gd_eff (Mat.mul cds_sx p_d)) in
    let p_s_sx = Mat.mul p_s s_x in
    let top_a_x =
      c_solve (Mat.sub (Mat.mul gs_eff s_x) (Mat.mul cds_sx p_s_sx))
    in
    let top_b = c_solve (Mat.sub n_eff (Mat.mul cds_sx p_n)) in
    let p_s_su = Mat.mul p_s s_u in
    let e_v_top =
      c_solve (Mat.sub (Mat.mul gs_eff s_u) (Mat.mul cds_sx p_s_su))
    in
    let e_i_top = c_solve (Mat.sub u_eff (Mat.mul cds_sx p_u)) in
    let e_dot_top = Mat.scale (-1.0) (c_solve (Mat.mul c_ds s_u)) in
    (* flicker coupling: each shaping state injects a unit current at its
       terminals; transform exactly like a noise column, but the result
       becomes an A-matrix column for that state *)
    let flk_top = Mat.create nd nf and flk_x = Mat.create nx nf in
    List.iteri
      (fun j fs ->
        let inj = Vec.create n_all in
        if fs.fk_n1 > 0 then inj.(fs.fk_n1 - 1) <- inj.(fs.fk_n1 - 1) +. 1.0;
        if fs.fk_n2 > 0 then inj.(fs.fk_n2 - 1) <- inj.(fs.fk_n2 - 1) -. 1.0;
        let r_resp = r_solve_vec (pick r_rows inj) in
        let direct = pick d_rows inj in
        let via_r =
          if nr = 0 then Vec.create nd else Mat.mul_vec g_dr r_resp
        in
        for i = 0 to nd - 1 do
          Mat.set flk_top i j (direct.(i) -. via_r.(i))
        done;
        (* op-amps sense the algebraic feedthrough at resistive nodes *)
        List.iteri
          (fun k o ->
            let sense sign node =
              match classify.(node) with
              | Resistive q ->
                  Mat.update flk_x k j (fun x ->
                      x +. (sign *. o.oi_ugf *. r_resp.(q)))
              | Ground | Dynamic _ | Driven _ -> ()
            in
            sense 1.0 o.oi_plus;
            sense (-1.0) o.oi_minus)
          integrator_opamps)
      flicker_sections;
    (* assemble circuit-state-sized blocks (nz_c = nd + nx rows) *)
    let blk top bottom label =
      let nc = Mat.cols top in
      if Mat.cols bottom <> nc then
        raise (Error ("internal: block mismatch in " ^ label));
      Mat.init nz_c nc (fun i j ->
          if i < nd then Mat.get top i j else Mat.get bottom (i - nd) j)
    in
    (* append nf zero rows to reach the full state size *)
    let with_flicker_rows ?(diag = [||]) m =
      Mat.init nz (Mat.cols m) (fun i j ->
          if i < nz_c then Mat.get m i j
          else if Array.length diag > 0 && j = Mat.cols m - nf + (i - nz_c)
          then diag.(i - nz_c)
          else 0.0)
    in
    let a_circuit =
      Mat.hcat (blk top_a_d p_d "A(d)") (blk top_a_x p_s_sx "A(x)")
    in
    let a =
      if nf = 0 then a_circuit
      else begin
        let flk_cols =
          blk (c_solve (Mat.sub flk_top (Mat.mul cds_sx flk_x))) flk_x "A(f)"
        in
        let top = Mat.hcat a_circuit flk_cols in
        let bottom =
          Mat.init nf nz (fun i j ->
              if j = nz_c + i then
                -.(List.nth flicker_sections i).fk_omega
              else 0.0)
        in
        Mat.vcat top bottom
      end
    in
    let b =
      let b_circuit = blk top_b p_n "B" in
      if nf = 0 then b_circuit
      else begin
        let widened = Mat.hcat b_circuit (Mat.create nz_c nf) in
        let sigmas =
          Array.of_list (List.map (fun fs -> fs.fk_sigma) flicker_sections)
        in
        with_flicker_rows ~diag:sigmas widened
      end
    in
    (* E: vsource columns then isource columns *)
    let e_v = blk e_v_top p_s_su "Ev" in
    let e_i = blk e_i_top p_u "Ei" in
    let e =
      let m = Mat.hcat e_v e_i in
      if nf = 0 then m else with_flicker_rows m
    in
    let e_dot =
      let m =
        Mat.hcat (blk e_dot_top (Mat.create nx nv) "Edot") (Mat.create nz_c ni)
      in
      if nf = 0 then m else with_flicker_rows m
    in
    let q = Mat.mul b (Mat.transpose b) in
    let noise_labels =
      Array.of_list
        (List.map (fun s -> s.label) noise
        @ List.map (fun fs -> fs.fk_label) flicker_sections)
    in
    { Pwl.tau; a; b; q; e; e_dot; noise_labels }
  in
  let durations = Clock.durations clock in
  let phases = Array.mapi build_phase durations in
  (* names and observables *)
  let state_names =
    Array.init nz (fun i ->
        if i < nd then
          "v(" ^ Netlist.node_name nl (Netlist.node_of_id nl d_nodes.(i)) ^ ")"
        else if i < nz_c then
          "x(" ^ (List.nth integrator_opamps (i - nd)).oi_name ^ ")"
        else
          "flicker(" ^ (List.nth flicker_sections (i - nz_c)).fk_label ^ ")")
  in
  let observables =
    let dyn =
      Array.to_list
        (Array.mapi
           (fun i n ->
             let row = Vec.create nz in
             row.(i) <- 1.0;
             (Netlist.node_name nl (Netlist.node_of_id nl n), row))
           d_nodes)
    in
    let opamp_outs =
      List.mapi
        (fun k o ->
          let row = Vec.create nz in
          row.(nd + k) <- 1.0;
          (Netlist.node_name nl (Netlist.node_of_id nl o.oi_out), row))
        integrator_opamps
    in
    dyn @ opamp_outs
  in
  let inputs =
    Array.of_list
      (List.map
         (fun v ->
           { Pwl.label = v.vs_name; waveform = v.vs_wave })
         vsources
      @ List.map
          (fun i ->
            { Pwl.label = i.is_name; waveform = i.is_wave })
          isources)
  in
  let sys =
    {
      Pwl.period = Clock.period clock;
      phases;
      nstates = nz;
      state_names;
      inputs;
      observables;
    }
  in
  Pwl.validate sys;
  sys
