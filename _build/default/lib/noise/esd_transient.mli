(** Brute-force time-domain PSD computation — the algorithm of the
    companion paper and the baseline the mixed-frequency-time method is
    measured against.

    Starting from zero initial conditions, the engine integrates
    simultaneously (per analysis frequency):

    - the covariance ODE [dK/dt = A K + K Aᵀ + B Bᵀ] (exact per-substep
      Van Loan propagation),
    - the cross-spectral density [dK'/dt = A K' + K c e^{jwt}]
      (A-stable trapezoidal),
    - the energy-spectral-density accumulator
      [dK''/dt = 2 Re (e^{-jwt} cᵀ K')],

    and stops when the running PSD estimate [K''(t)/t] has changed by
    less than [tol_db] (default 0.1 dB, as in the paper) over
    [window_periods] consecutive clock periods. *)

module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec

type result = {
  psd : float;  (** converged double-sided PSD, V^2/Hz *)
  periods : int;  (** clock periods integrated *)
  history : (float * float) array;
      (** (time, running PSD estimate) at each period boundary *)
}

val psd :
  ?samples_per_phase:int -> ?grid:Scnoise_core.Covariance.grid_kind ->
  ?tol_db:float -> ?window_periods:int -> ?min_periods:int ->
  ?max_periods:int -> ?init:[ `Zero | `Periodic ] -> Pwl.t -> output:Vec.t ->
  f:float -> result
(** Defaults: [tol_db = 0.1], [window_periods = 3], [min_periods = 4],
    [max_periods = 20_000], [init = `Zero].  [`Zero] starts the
    covariance from zero initial conditions (the paper's setting);
    [`Periodic] starts from the periodic steady-state covariance, which
    removes the covariance part of the O(1/t) startup bias of the
    running estimate (the cross-spectral density still ramps up from
    zero).
    Raises [Failure] when [max_periods] is hit without convergence. *)

val sweep :
  ?samples_per_phase:int -> ?grid:Scnoise_core.Covariance.grid_kind ->
  ?tol_db:float -> ?window_periods:int -> ?min_periods:int ->
  ?max_periods:int -> ?init:[ `Zero | `Periodic ] -> Pwl.t -> output:Vec.t ->
  float array -> float array
(** PSD at each frequency (values only). *)
