module Mat = Scnoise_linalg.Mat
module Vec = Scnoise_linalg.Vec
module Cx = Scnoise_linalg.Cx
module Cvec = Scnoise_linalg.Cvec
module Pwl = Scnoise_circuit.Pwl
module Transfer = Scnoise_core.Transfer
module Contrib = Scnoise_core.Contrib

type engine = {
  sys : Pwl.t;
  transfer : Transfer.engine;
  labels : string list;
  (* per source label, the per-phase intensity column (zero when the
     source is inactive in a phase) *)
  columns : (string * Vec.t array) list;
}

let prepare ?solver ?samples_per_phase sys ~output =
  let transfer = Transfer.prepare ?solver ?samples_per_phase sys ~output in
  let labels = Contrib.source_labels sys in
  let n = sys.Pwl.nstates in
  let column_of_phase label (ph : Pwl.phase) =
    let rec find j =
      if j >= Array.length ph.Pwl.noise_labels then Vec.create n
      else if ph.Pwl.noise_labels.(j) = label then Mat.col ph.Pwl.b j
      else find (j + 1)
    in
    find 0
  in
  let columns =
    List.map
      (fun label ->
        (label, Array.map (column_of_phase label) sys.Pwl.phases))
      labels
  in
  { sys; transfer; labels; columns }

let source_labels e = e.labels

(* |H_{j,k}(f - k f_clk)|^2 for all k: each k needs its own solve because
   the input frequency shifts with k. *)
let per_source_sum e cols ~f ~k_max =
  let fc = 1.0 /. e.sys.Pwl.period in
  let acc = ref 0.0 in
  for k = -k_max to k_max do
    let f_in = f -. (float_of_int k *. fc) in
    (* only the k-th harmonic of this solve lands back at [f] *)
    let h =
      Transfer.response e.transfer
        ~forcing:(fun p -> Cvec.of_real cols.(p))
        ~f:f_in ~k_range:(abs k)
    in
    let hk = h.(k + abs k) in
    acc := !acc +. (Cx.modulus hk ** 2.0)
  done;
  !acc

let psd_per_source e ~f ~k_max =
  if k_max < 0 then invalid_arg "Freq_domain.psd_per_source: k_max < 0";
  List.map
    (fun (label, cols) -> (label, per_source_sum e cols ~f ~k_max))
    e.columns

let psd e ~f ~k_max =
  List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (psd_per_source e ~f ~k_max)
