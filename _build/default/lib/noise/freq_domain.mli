(** Frequency-domain LPTV noise analysis — the classical alternative the
    mixed-frequency-time method is motivated against.

    For each white-noise source [j] (a column of the phase-wise [B]
    matrices) the output spectrum is assembled from harmonic transfer
    functions by the aliasing sum

    [S(f) = sum_j sum_{k=-K..K} |H_{j,k}(f - k f_clk)|^2]

    where [H_{j,k}] is the k-th output harmonic for a complex-exponential
    excitation entering through source [j]'s intensity column.  Each
    [(j, k)] term costs one periodic boundary-value solve, so a single
    output frequency costs [n_sources * (2K+1)] solves — and [K] must
    cover the full noise bandwidth of the circuit in units of the clock
    rate.  For strongly under-sampled (stiff) switched-capacitor
    circuits that ratio runs into the hundreds, which is precisely why
    the time-domain method of this library wins; the truncation study is
    part of the benchmark suite. *)

module Pwl = Scnoise_circuit.Pwl
module Vec = Scnoise_linalg.Vec

type engine

val prepare :
  ?solver:Scnoise_core.Covariance.solver -> ?samples_per_phase:int ->
  Pwl.t -> output:Vec.t -> engine

val psd : engine -> f:float -> k_max:int -> float
(** Double-sided output PSD at [f] with the aliasing sum truncated at
    [|k| <= k_max]. *)

val psd_per_source : engine -> f:float -> k_max:int -> (string * float) list
(** Per-source contributions of the same sum. *)

val source_labels : engine -> string list
