lib/noise/freq_domain.ml: Array List Scnoise_circuit Scnoise_core Scnoise_linalg
