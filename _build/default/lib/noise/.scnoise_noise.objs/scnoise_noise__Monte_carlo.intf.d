lib/noise/monte_carlo.mli: Scnoise_circuit Scnoise_linalg
