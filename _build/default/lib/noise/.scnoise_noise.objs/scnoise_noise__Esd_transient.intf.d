lib/noise/esd_transient.mli: Scnoise_circuit Scnoise_core Scnoise_linalg
