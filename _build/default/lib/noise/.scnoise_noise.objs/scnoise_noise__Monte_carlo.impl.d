lib/noise/monte_carlo.ml: Array Float Scnoise_circuit Scnoise_core Scnoise_linalg Scnoise_prng Scnoise_spectral
