lib/noise/freq_domain.mli: Scnoise_circuit Scnoise_core Scnoise_linalg
