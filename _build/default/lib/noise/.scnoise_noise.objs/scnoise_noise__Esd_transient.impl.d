lib/noise/esd_transient.ml: Array Float Hashtbl List Scnoise_circuit Scnoise_core Scnoise_linalg Scnoise_ode Scnoise_util
