lib/analytic/ideal_sc.mli:
