lib/analytic/ideal_sc.ml: Float Lti Scnoise_linalg Scnoise_util
