lib/analytic/lti.ml: Float Scnoise_util
