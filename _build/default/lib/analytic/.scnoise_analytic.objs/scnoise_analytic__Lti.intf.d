lib/analytic/lti.mli:
