lib/analytic/switched_rc.ml: Float Lti Scnoise_linalg Scnoise_util
