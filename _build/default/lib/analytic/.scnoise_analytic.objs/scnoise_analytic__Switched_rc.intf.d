lib/analytic/switched_rc.mli:
