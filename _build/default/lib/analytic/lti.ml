module Const = Scnoise_util.Const

let rc_lowpass_psd ~r ~c ?temperature f =
  if r <= 0.0 || c <= 0.0 then invalid_arg "Lti.rc_lowpass_psd: r, c > 0 required";
  let kt = Const.kt ?temperature () in
  let w_rc = 2.0 *. Float.pi *. f *. r *. c in
  2.0 *. kt *. r /. (1.0 +. (w_rc *. w_rc))

let rc_total_noise ~c ?temperature () =
  if c <= 0.0 then invalid_arg "Lti.rc_total_noise: c > 0 required";
  Const.kt ?temperature () /. c

let lorentzian ~s0 ~pole_hz f =
  if pole_hz <= 0.0 then invalid_arg "Lti.lorentzian: pole_hz > 0 required";
  let x = f /. pole_hz in
  s0 /. (1.0 +. (x *. x))

let sinc x = if abs_float x < 1e-8 then 1.0 -. (x *. x /. 6.0) else sin x /. x
