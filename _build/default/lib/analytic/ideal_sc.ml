module Const = Scnoise_util.Const
module Cx = Scnoise_linalg.Cx

let kt_over_c ?temperature c =
  if c <= 0.0 then invalid_arg "Ideal_sc.kt_over_c: c <= 0";
  Const.kt ?temperature () /. c

let sample_hold_psd ~var ~period f =
  if var < 0.0 || period <= 0.0 then
    invalid_arg "Ideal_sc.sample_hold_psd: bad parameters";
  let x = Float.pi *. f *. period in
  let s = Lti.sinc x in
  var *. period *. s *. s

let first_order_dt_psd ~var ~period ~pole f =
  if abs_float pole >= 1.0 then
    invalid_arg "Ideal_sc.first_order_dt_psd: |pole| >= 1";
  let hold = sample_hold_psd ~var ~period f in
  let z = Cx.cis (-2.0 *. Float.pi *. f *. period) in
  let denom = Cx.( -: ) Cx.one (Cx.scale pole z) in
  let m = Cx.modulus denom in
  hold /. (m *. m)

let total_noise_first_order ~var ~pole =
  if abs_float pole >= 1.0 then
    invalid_arg "Ideal_sc.total_noise_first_order: |pole| >= 1";
  var /. (1.0 -. (pole *. pole))
