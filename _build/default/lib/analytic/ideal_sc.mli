(** Ideal switched-capacitor ("full and fast" charge transfer) noise
    references.

    Under instantaneous charge transfer every sampling event deposits an
    independent [kT/C] charge-noise sample; a sampled-and-held sequence
    of variance [var] refreshed every [period] has the classic
    [var * T * sinc^2(pi f T)] spectrum.  These formulas anchor the
    "sampled-data like" limits of the numerically computed spectra. *)

val kt_over_c : ?temperature:float -> float -> float
(** [kt_over_c c] is the sampled noise variance [kT/C] (V^2). *)

val sample_hold_psd : var:float -> period:float -> float -> float
(** [sample_hold_psd ~var ~period f]: double-sided PSD of an i.i.d.
    zero-order-held sequence with per-sample variance [var]. *)

val first_order_dt_psd :
  var:float -> period:float -> pole:float -> float -> float
(** PSD of a zero-order-held first-order discrete-time recursion
    [y(n+1) = pole * y(n) + e(n)] driven by i.i.d. samples of variance
    [var]; requires [|pole| < 1].  [S(f) = var T sinc^2(pi f T) /
    |1 - pole e^{-j 2 pi f T}|^2]. *)

val total_noise_first_order : var:float -> pole:float -> float
(** Variance of the recursion above, [var / (1 - pole^2)]. *)
