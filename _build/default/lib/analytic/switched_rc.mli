(** Exact output-noise PSD of the periodically switched RC circuit.

    The circuit of Rice's classic analysis (and Fig. 2 of the source
    papers): a noisy resistor [R] is connected through an ideal switch to
    a capacitor [C] to ground; the switch conducts for the first
    [duty * period] of every clock period.  In steady state the
    capacitor-voltage variance is the constant [kT/C]; the PSD follows in
    closed form by solving the piecewise-exponential periodic
    boundary-value problem of the cross-spectral envelope — analytically
    equivalent to Rice's spectrum, and used as the machine-checkable
    reference for the numerical engines. *)

type t = {
  r : float;  (** switch (resistor) value, ohms *)
  c : float;  (** capacitance, farads *)
  period : float;  (** clock period, s *)
  duty : float;  (** fraction of the period the switch conducts *)
  temperature : float;  (** kelvin *)
}

val make :
  ?temperature:float -> r:float -> c:float -> period:float -> duty:float ->
  unit -> t
(** Validates all parameters ([0 < duty < 1] etc.). *)

val variance : t -> float
(** Steady-state output variance, [kT/C]. *)

val psd : t -> float -> float
(** [psd t f] is the exact double-sided output PSD (V^2/Hz) at
    frequency [f] Hz. *)

val psd_db : t -> float -> float

val lti_limit : t -> float -> float
(** PSD of the always-closed ([duty -> 1]) limit,
    [2kTR / (1 + (w R C)^2)] — a consistency anchor. *)
