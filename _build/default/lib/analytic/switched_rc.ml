module Cx = Scnoise_linalg.Cx
module Const = Scnoise_util.Const

type t = {
  r : float;
  c : float;
  period : float;
  duty : float;
  temperature : float;
}

let make ?(temperature = Const.room_temperature) ~r ~c ~period ~duty () =
  if r <= 0.0 then invalid_arg "Switched_rc.make: r <= 0";
  if c <= 0.0 then invalid_arg "Switched_rc.make: c <= 0";
  if period <= 0.0 then invalid_arg "Switched_rc.make: period <= 0";
  if duty <= 0.0 || duty >= 1.0 then
    invalid_arg "Switched_rc.make: need 0 < duty < 1";
  if temperature <= 0.0 then invalid_arg "Switched_rc.make: temperature <= 0";
  { r; c; period; duty; temperature }

let variance t = Const.boltzmann *. t.temperature /. t.c

(* (1 - e^{-z t}) / z, numerically stable near z = 0. *)
let em1_over z tt =
  if Cx.modulus z *. tt < 1e-8 then
    let zt = Cx.scale tt z in
    Cx.scale tt
      (Cx.( -: ) Cx.one
         (Cx.( -: ) (Cx.scale 0.5 zt) (Cx.scale (1.0 /. 6.0) (Cx.( *: ) zt zt))))
  else Cx.( /: ) (Cx.( -: ) Cx.one (Cx.exp (Cx.scale (-.tt) z))) z

(* The cross-spectral envelope P obeys
     dP/dt = -(a + jw) P + K   while the switch conducts (a = 1/RC),
     dP/dt = -jw P + K         while it is open,
   with K = kT/C.  Solve the two-interval periodic BVP in closed form and
   average 2 Re P over the period. *)
let psd t f =
  let omega = 2.0 *. Float.pi *. f in
  let k = variance t in
  let a = 1.0 /. (t.r *. t.c) in
  let t1 = t.duty *. t.period in
  let t2 = (1.0 -. t.duty) *. t.period in
  let beta = Cx.make a omega in
  let gamma = Cx.make 0.0 omega in
  let e1 = Cx.exp (Cx.scale (-.t1) beta) in
  let e2 = Cx.exp (Cx.scale (-.t2) gamma) in
  let f1 = em1_over beta t1 in
  (* (1-e1)/beta *)
  let f2 = em1_over gamma t2 in
  let kc = Cx.re k in
  (* periodicity: P0 = e2 (e1 P0 + K f1) + K f2 *)
  let numer = Cx.( +: ) (Cx.( *: ) e2 (Cx.( *: ) kc f1)) (Cx.( *: ) kc f2) in
  let denom = Cx.( -: ) Cx.one (Cx.( *: ) e2 e1) in
  let p0 = Cx.( /: ) numer denom in
  let p1 = Cx.( +: ) (Cx.( *: ) e1 p0) (Cx.( *: ) kc f1) in
  (* integral over the conducting interval:
     ∫ P dt = (P0 - K/beta) (1-e1)/beta + K t1 / beta *)
  let int1 =
    let k_over = Cx.( /: ) kc beta in
    Cx.( +: )
      (Cx.( *: ) (Cx.( -: ) p0 k_over) f1)
      (Cx.scale t1 k_over)
  in
  (* same for the open interval, numerically stable at w -> 0 *)
  let int2 =
    if Cx.modulus gamma *. t2 < 1e-8 then
      (* P ≈ P1 + K t - ... : ∫ ≈ P1 t2 + K t2²/2 *)
      Cx.( +: ) (Cx.scale t2 p1) (Cx.re (k *. t2 *. t2 /. 2.0))
    else begin
      let k_over = Cx.( /: ) kc gamma in
      Cx.( +: )
        (Cx.( *: ) (Cx.( -: ) p1 k_over) f2)
        (Cx.scale t2 k_over)
    end
  in
  let total = Cx.( +: ) int1 int2 in
  2.0 *. total.Cx.re /. t.period

let psd_db t f = Scnoise_util.Db.of_power (psd t f)

let lti_limit t f =
  Lti.rc_lowpass_psd ~r:t.r ~c:t.c ~temperature:t.temperature f
