(** Closed-form noise references for simple LTI circuits. *)

val rc_lowpass_psd : r:float -> c:float -> ?temperature:float -> float -> float
(** [rc_lowpass_psd ~r ~c f] is the double-sided output-noise PSD
    (V^2/Hz) of an RC low-pass driven by the resistor's thermal noise:
    [2kTR / (1 + (2 pi f R C)^2)]. *)

val rc_total_noise : c:float -> ?temperature:float -> unit -> float
(** Total integrated output noise [kT/C] (V^2), independent of R. *)

val lorentzian : s0:float -> pole_hz:float -> float -> float
(** [lorentzian ~s0 ~pole_hz f] is [s0 / (1 + (f/pole_hz)^2)]. *)

val sinc : float -> float
(** [sinc x] is [sin(x)/x] with the removable singularity filled in. *)
